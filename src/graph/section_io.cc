#include "graph/section_io.h"

#include <unistd.h>

#include <cstdio>
#include <utility>

#include "common/crc32.h"
#include "common/string_util.h"
#include "graph/serialize_internal.h"

namespace freehgc::section_io {

namespace {

using serialize_internal::ByteReader;
using serialize_internal::FilePtr;
using serialize_internal::ReadPod;
using serialize_internal::WritePod;

}  // namespace

const char* KindName(uint32_t kind) {
  switch (kind) {
    case kMeta: return "meta";
    case kIndptr: return "indptr";
    case kIndices: return "indices";
    case kValues: return "values";
    case kFeatures: return "features";
    case kLabels: return "labels";
    case kTrain: return "train";
    case kVal: return "val";
    case kTest: return "test";
    default: return "unknown";
  }
}

Format GraphContainerFormat() {
  return {serialize_internal::kMagic, serialize_internal::kVersionV3, "v3",
          "v3 graph container"};
}

Format SpillFormat() {
  return {kSpillMagic, kSpillVersion, "spill", "freehgc spill file"};
}

// --- Writer ---------------------------------------------------------------

struct SectionWriter::Impl {
  Format format;
  std::string final_path;
  std::string tmp_path;
  FilePtr file;
  uint64_t offset = 0;  // bytes written so far
  std::vector<SectionEntry> sections;
  bool have_fingerprint = false;
  uint64_t fingerprint = 0;
  bool finished = false;
  bool section_open = false;

  // Open section accumulation.
  uint32_t cur_kind = 0;
  uint32_t cur_index = 0;
  uint32_t cur_crc = 0;
  uint64_t cur_size = 0;
  uint64_t cur_off = 0;

  Status WriteRaw(const void* data, size_t n) {
    if (n > 0 && std::fwrite(data, 1, n, file.get()) != n) {
      return Status::Internal("short write to " + tmp_path);
    }
    offset += n;
    return Status::OK();
  }

  /// Zero-pads to the next 4096-byte boundary.
  Status Pad() {
    static const char zeros[kAlign] = {};
    const uint64_t rem = offset % kAlign;
    if (rem == 0) return Status::OK();
    return WriteRaw(zeros, static_cast<size_t>(kAlign - rem));
  }

  Status CheckOpen() const {
    if (!file) {
      return Status::FailedPrecondition(
          StrFormat("%s writer is not open", format.label));
    }
    if (finished) {
      return Status::FailedPrecondition(
          StrFormat("%s writer already finished", format.label));
    }
    return Status::OK();
  }
};

Result<SectionWriter> SectionWriter::Create(const std::string& path,
                                            const Format& format) {
  auto impl = std::make_unique<Impl>();
  impl->format = format;
  impl->final_path = path;
  impl->tmp_path = path + ".tmp";
  impl->file.reset(std::fopen(impl->tmp_path.c_str(), "wb"));
  if (!impl->file) {
    return Status::InvalidArgument("cannot open for write: " +
                                   impl->tmp_path);
  }
  // Reserve the header page; the real header is patched in on Finish.
  static const char zeros[kHeaderBytes] = {};
  FREEHGC_RETURN_IF_ERROR(impl->WriteRaw(zeros, sizeof(zeros)));
  SectionWriter w;
  w.impl_ = impl.release();
  return w;
}

SectionWriter::SectionWriter(SectionWriter&& other) noexcept
    : impl_(other.impl_) {
  other.impl_ = nullptr;
}

SectionWriter& SectionWriter::operator=(SectionWriter&& other) noexcept {
  if (this != &other) {
    Abandon();
    impl_ = other.impl_;
    other.impl_ = nullptr;
  }
  return *this;
}

SectionWriter::~SectionWriter() { Abandon(); }

void SectionWriter::Abandon() {
  if (impl_ == nullptr) return;
  if (impl_->file && !impl_->finished) {
    impl_->file.reset();
    std::remove(impl_->tmp_path.c_str());
  }
  delete impl_;
  impl_ = nullptr;
}

Status SectionWriter::BeginSection(uint32_t kind, uint32_t index) {
  FREEHGC_RETURN_IF_ERROR(impl_->CheckOpen());
  if (impl_->section_open) {
    return Status::FailedPrecondition("section already open");
  }
  FREEHGC_RETURN_IF_ERROR(impl_->Pad());
  impl_->cur_kind = kind;
  impl_->cur_index = index;
  impl_->cur_crc = 0;
  impl_->cur_size = 0;
  impl_->cur_off = impl_->offset;
  impl_->section_open = true;
  return Status::OK();
}

Status SectionWriter::Append(const void* data, size_t n) {
  FREEHGC_RETURN_IF_ERROR(impl_->CheckOpen());
  if (!impl_->section_open) {
    return Status::FailedPrecondition("no open section");
  }
  FREEHGC_RETURN_IF_ERROR(impl_->WriteRaw(data, n));
  impl_->cur_crc = Crc32(data, n, impl_->cur_crc);
  impl_->cur_size += n;
  return Status::OK();
}

Status SectionWriter::EndSection(uint64_t logical_count) {
  FREEHGC_RETURN_IF_ERROR(impl_->CheckOpen());
  if (!impl_->section_open) {
    return Status::FailedPrecondition("no open section");
  }
  SectionEntry s;
  s.kind = impl_->cur_kind;
  s.index = impl_->cur_index;
  s.crc = impl_->cur_crc;
  s.offset = impl_->cur_off;
  s.size = impl_->cur_size;
  s.logical_count = logical_count;
  impl_->sections.push_back(s);
  impl_->section_open = false;
  return Status::OK();
}

Status SectionWriter::SetContentFingerprint(uint64_t fingerprint) {
  FREEHGC_RETURN_IF_ERROR(impl_->CheckOpen());
  impl_->fingerprint = fingerprint;
  impl_->have_fingerprint = true;
  return Status::OK();
}

Status SectionWriter::CheckOpen() const {
  if (impl_ == nullptr) return Status::FailedPrecondition("writer moved out");
  return impl_->CheckOpen();
}

Result<uint64_t> SectionWriter::Finish() {
  FREEHGC_RETURN_IF_ERROR(impl_->CheckOpen());
  if (impl_->section_open) {
    return Status::FailedPrecondition("unclosed section");
  }
  if (!impl_->have_fingerprint) {
    return Status::FailedPrecondition(
        "SetContentFingerprint required before Finish");
  }
  FREEHGC_RETURN_IF_ERROR(impl_->Pad());

  FileHeader h;
  h.magic = impl_->format.magic;
  h.version = impl_->format.version;
  h.section_count = static_cast<uint32_t>(impl_->sections.size());
  h.table_offset = impl_->offset;
  h.table_size = impl_->sections.size() * sizeof(SectionEntry);
  h.content_fingerprint = impl_->fingerprint;
  std::string table;
  table.reserve(h.table_size);
  for (const auto& s : impl_->sections) {
    table.append(reinterpret_cast<const char*>(&s), sizeof(s));
  }
  h.table_crc = Crc32(table.data(), table.size());
  FREEHGC_RETURN_IF_ERROR(impl_->WriteRaw(table.data(), table.size()));
  h.file_size = impl_->offset;
  h.header_crc = Crc32(&h, offsetof(FileHeader, header_crc));

  char page[kHeaderBytes] = {};
  std::memcpy(page, &h, sizeof(h));
  if (std::fseek(impl_->file.get(), 0, SEEK_SET) != 0 ||
      std::fwrite(page, 1, sizeof(page), impl_->file.get()) !=
          sizeof(page) ||
      std::fflush(impl_->file.get()) != 0 ||
      ::fsync(::fileno(impl_->file.get())) != 0) {
    return Status::Internal("cannot finalize " + impl_->tmp_path);
  }
  impl_->file.reset();
  if (std::rename(impl_->tmp_path.c_str(), impl_->final_path.c_str()) != 0) {
    std::remove(impl_->tmp_path.c_str());
    return Status::Internal("cannot rename " + impl_->tmp_path + " to " +
                            impl_->final_path);
  }
  impl_->finished = true;
  return h.file_size;
}

// --- View -----------------------------------------------------------------

namespace {

/// Validates header + section table structure (magics, CRCs, alignment,
/// bounds). Section payload CRCs are NOT verified here; callers decide
/// whether to fail (map/load) or report (inspect).
Status ParseInto(const uint8_t* base, size_t size, const Format& format,
                 FileHeader* header, std::vector<SectionEntry>* sections,
                 std::unordered_map<uint64_t, size_t>* by_key) {
  const char* label = format.label;
  if (size < kHeaderBytes) {
    return Status::InvalidArgument(
        StrFormat("%s container shorter than its header", label));
  }
  std::memcpy(header, base, sizeof(*header));
  const FileHeader& h = *header;
  if (h.magic != format.magic || h.version != format.version) {
    return Status::InvalidArgument(StrFormat("not a %s", format.describe));
  }
  const uint32_t actual_hcrc = Crc32(&h, offsetof(FileHeader, header_crc));
  if (actual_hcrc != h.header_crc) {
    return Status::InvalidArgument(StrFormat(
        "%s header checksum mismatch (stored %08x, computed %08x)", label,
        h.header_crc, actual_hcrc));
  }
  if (h.file_size != size) {
    return Status::InvalidArgument(StrFormat(
        "%s container truncated: %zu of %llu bytes", label, size,
        static_cast<unsigned long long>(h.file_size)));
  }
  if (h.section_count > kMaxSections ||
      h.table_size != h.section_count * sizeof(SectionEntry) ||
      h.table_offset < kHeaderBytes ||
      h.table_offset % kAlign != 0 ||
      h.table_offset + h.table_size != size) {
    return Status::InvalidArgument(
        StrFormat("%s section table out of bounds", label));
  }
  const uint32_t actual_tcrc = Crc32(base + h.table_offset, h.table_size);
  if (actual_tcrc != h.table_crc) {
    return Status::InvalidArgument(StrFormat(
        "%s section table checksum mismatch (stored %08x, computed %08x)",
        label, h.table_crc, actual_tcrc));
  }
  sections->resize(h.section_count);
  if (h.table_size > 0) {
    std::memcpy(sections->data(), base + h.table_offset, h.table_size);
  }
  for (size_t i = 0; i < sections->size(); ++i) {
    const SectionEntry& s = (*sections)[i];
    if (s.magic != kSectionMagic) {
      return Status::InvalidArgument(
          StrFormat("%s section entry magic mismatch", label));
    }
    if (s.offset % kAlign != 0) {
      return Status::InvalidArgument(StrFormat(
          "%s section %s[%u] misaligned (offset %llu)", label,
          KindName(s.kind), s.index,
          static_cast<unsigned long long>(s.offset)));
    }
    if (s.offset < kHeaderBytes || s.offset > h.table_offset ||
        s.size > h.table_offset - s.offset) {
      return Status::InvalidArgument(
          StrFormat("%s section %s[%u] out of bounds", label,
                    KindName(s.kind), s.index));
    }
    const uint64_t key = (static_cast<uint64_t>(s.kind) << 32) | s.index;
    if (!by_key->emplace(key, i).second) {
      return Status::InvalidArgument(StrFormat(
          "%s duplicate section %s[%u]", label, KindName(s.kind), s.index));
    }
  }
  return Status::OK();
}

}  // namespace

Result<SectionView> SectionView::Map(const std::string& path,
                                     const Format& format) {
  FREEHGC_ASSIGN_OR_RETURN(std::shared_ptr<const MappedFile> mf,
                           MappedFile::OpenShared(path));
  SectionView v;
  v.format_ = format;
  v.base_ = mf->data();
  FREEHGC_RETURN_IF_ERROR(ParseInto(mf->data(), mf->size(), format,
                                    &v.header_, &v.sections_, &v.by_key_));
  v.mapping_ = std::move(mf);
  return v;
}

Result<SectionView> SectionView::Parse(const uint8_t* base, size_t size,
                                       const Format& format) {
  SectionView v;
  v.format_ = format;
  v.base_ = base;
  FREEHGC_RETURN_IF_ERROR(ParseInto(base, size, format, &v.header_,
                                    &v.sections_, &v.by_key_));
  return v;
}

const SectionEntry* SectionView::Find(uint32_t kind, uint32_t index) const {
  auto it = by_key_.find((static_cast<uint64_t>(kind) << 32) | index);
  return it == by_key_.end() ? nullptr : &sections_[it->second];
}

Result<const SectionEntry*> SectionView::RequireArray(uint32_t kind,
                                                      uint32_t index,
                                                      uint64_t count,
                                                      size_t elem_size) const {
  const SectionEntry* s = Find(kind, index);
  if (s == nullptr) {
    return Status::InvalidArgument(
        StrFormat("%s container missing section %s[%u]", format_.label,
                  KindName(kind), index));
  }
  if (s->size != count * elem_size || s->logical_count != count) {
    return Status::InvalidArgument(StrFormat(
        "%s section %s[%u] size does not match metadata", format_.label,
        KindName(kind), index));
  }
  return s;
}

Status SectionView::VerifyCrc(const SectionEntry& s) const {
  const uint32_t actual = Crc32(base_ + s.offset, s.size);
  if (actual != s.crc) {
    return Status::InvalidArgument(StrFormat(
        "%s section %s[%u] checksum mismatch (stored %08x, computed %08x)",
        format_.label, KindName(s.kind), s.index, s.crc, actual));
  }
  return Status::OK();
}

Status SectionView::VerifyAllCrcs() const {
  if (mapping_ != nullptr) {
    mapping_->Advise(MappedFile::AccessPattern::kSequential);
  }
  for (const auto& s : sections_) {
    FREEHGC_RETURN_IF_ERROR(VerifyCrc(s));
  }
  if (mapping_ != nullptr) {
    mapping_->Advise(MappedFile::AccessPattern::kNormal);
  }
  return Status::OK();
}

Result<uint64_t> PeekFingerprint(const std::string& path,
                                 const Format& format) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::NotFound("cannot open: " + path);
  FileHeader h;
  if (std::fread(&h, 1, sizeof(h), f.get()) != sizeof(h)) {
    return Status::InvalidArgument("truncated header: " + path);
  }
  if (h.magic != format.magic || h.version != format.version) {
    return Status::InvalidArgument(StrFormat("not a %s", format.describe));
  }
  const uint32_t actual = Crc32(&h, offsetof(FileHeader, header_crc));
  if (actual != h.header_crc) {
    return Status::InvalidArgument(StrFormat(
        "%s header checksum mismatch (stored %08x, computed %08x)",
        format.label, h.header_crc, actual));
  }
  return h.content_fingerprint;
}

// --- CSR spill files ------------------------------------------------------

Result<uint64_t> WriteCsrSpill(const CsrMatrix& m, const std::string& path,
                               uint64_t fingerprint) {
  FREEHGC_ASSIGN_OR_RETURN(SectionWriter w,
                           SectionWriter::Create(path, SpillFormat()));
  std::string meta;
  WritePod(meta, static_cast<int64_t>(m.rows()));
  WritePod(meta, static_cast<int64_t>(m.cols()));
  WritePod(meta, static_cast<int64_t>(m.nnz()));
  FREEHGC_RETURN_IF_ERROR(w.BeginSection(kMeta, 0));
  FREEHGC_RETURN_IF_ERROR(w.Append(meta.data(), meta.size()));
  FREEHGC_RETURN_IF_ERROR(w.EndSection(meta.size()));
  FREEHGC_RETURN_IF_ERROR(w.WriteArraySection(kIndptr, 0, m.indptr()));
  FREEHGC_RETURN_IF_ERROR(w.WriteArraySection(kIndices, 0, m.indices()));
  FREEHGC_RETURN_IF_ERROR(w.WriteArraySection(kValues, 0, m.values()));
  FREEHGC_RETURN_IF_ERROR(w.SetContentFingerprint(fingerprint));
  return w.Finish();
}

Result<CsrMatrix> MapCsrSpill(const std::string& path) {
  FREEHGC_ASSIGN_OR_RETURN(SectionView v,
                           SectionView::Map(path, SpillFormat()));
  FREEHGC_RETURN_IF_ERROR(v.VerifyAllCrcs());
  const SectionEntry* meta = v.Find(kMeta, 0);
  if (meta == nullptr) {
    return Status::InvalidArgument("spill container missing section meta[0]");
  }
  ByteReader r(std::string_view(
      reinterpret_cast<const char*>(v.base() + meta->offset), meta->size));
  int64_t rows = 0, cols = 0, nnz = 0;
  if (!ReadPod(r, &rows) || !ReadPod(r, &cols) || !ReadPod(r, &nnz) ||
      rows < 0 || cols < 0 || nnz < 0 || rows > INT32_MAX ||
      cols > INT32_MAX) {
    return Status::InvalidArgument("spill meta: bad CSR shape");
  }
  FREEHGC_ASSIGN_OR_RETURN(
      const SectionEntry* ip,
      v.RequireArray(kIndptr, 0, static_cast<uint64_t>(rows) + 1,
                     sizeof(int64_t)));
  FREEHGC_ASSIGN_OR_RETURN(
      const SectionEntry* ix,
      v.RequireArray(kIndices, 0, static_cast<uint64_t>(nnz),
                     sizeof(int32_t)));
  FREEHGC_ASSIGN_OR_RETURN(
      const SectionEntry* va,
      v.RequireArray(kValues, 0, static_cast<uint64_t>(nnz), sizeof(float)));
  return CsrMatrix::FromView(static_cast<int32_t>(rows),
                             static_cast<int32_t>(cols), v.Span<int64_t>(*ip),
                             v.Span<int32_t>(*ix), v.Span<float>(*va),
                             v.mapping());
}

}  // namespace freehgc::section_io
