#ifndef FREEHGC_GRAPH_HETERO_GRAPH_H_
#define FREEHGC_GRAPH_HETERO_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dense/matrix.h"
#include "exec/exec_context.h"
#include "sparse/csr.h"

namespace freehgc {

/// Identifier of a node type within a HeteroGraph (index into the type
/// registry).
using TypeId = int32_t;

/// Identifier of a relation (edge type).
using RelationId = int32_t;

/// One directed edge type: src-type nodes -> dst-type nodes, stored as a
/// CSR adjacency with shape (count(src_type), count(dst_type)).
struct Relation {
  std::string name;
  TypeId src_type = -1;
  TypeId dst_type = -1;
  CsrMatrix adj;
};

/// Role of a node type in the vertical hierarchy of Fig. 5 of the paper:
/// the target type is the root; other types directly connected to the root
/// are fathers; types further away are leaves.
enum class TypeRole { kRoot, kFather, kLeaf };

/// A heterogeneous graph G = (V, E, phi, psi) with per-type features and
/// target-type labels, matching the paper's formulation (Section II-A).
///
/// Node ids are local to their type: type t has nodes 0..NodeCount(t)-1.
/// The container owns everything; it is copyable (deep) and movable.
class HeteroGraph {
 public:
  HeteroGraph() = default;

  // --- Construction -----------------------------------------------------

  /// Registers a node type with `count` nodes; returns its TypeId.
  /// Fails if the name is already registered or count is negative.
  Result<TypeId> AddNodeType(const std::string& name, int32_t count);

  /// Registers a directed edge type. The adjacency shape must be
  /// (count(src), count(dst)). Returns the RelationId.
  Result<RelationId> AddRelation(const std::string& name, TypeId src,
                                 TypeId dst, CsrMatrix adj);

  /// For every relation lacking a reverse counterpart (a relation
  /// dst -> src), adds "rev_<name>" with the transposed adjacency. HGNN
  /// message passing and meta-path enumeration need both directions.
  /// The per-relation transposes run concurrently on `ctx`; the new
  /// relations are registered in original relation order regardless of
  /// thread count.
  void EnsureReverseRelations(exec::ExecContext* ctx = nullptr);

  /// Sets the feature matrix of a type; rows must equal the node count.
  Status SetFeatures(TypeId type, Matrix features);

  /// Declares the target (root) type, its labels (one per node, in
  /// [0, num_classes)), and the class count.
  Status SetTarget(TypeId type, std::vector<int32_t> labels,
                   int32_t num_classes);

  /// Sets the train/val/test split over target-type node ids.
  Status SetSplit(std::vector<int32_t> train, std::vector<int32_t> val,
                  std::vector<int32_t> test);

  // --- Inspection --------------------------------------------------------

  int32_t NumNodeTypes() const {
    return static_cast<int32_t>(type_names_.size());
  }
  int32_t NumRelations() const {
    return static_cast<int32_t>(relations_.size());
  }
  const std::string& TypeName(TypeId t) const { return type_names_[t]; }
  int32_t NodeCount(TypeId t) const { return type_counts_[t]; }

  /// Looks up a type by name.
  Result<TypeId> TypeByName(const std::string& name) const;

  const Relation& relation(RelationId r) const { return relations_[r]; }

  /// Relation ids whose src type is `t`.
  std::vector<RelationId> RelationsFrom(TypeId t) const;

  /// Relation ids whose dst type is `t`.
  std::vector<RelationId> RelationsTo(TypeId t) const;

  /// Feature matrix of a type (empty Matrix when unset).
  const Matrix& Features(TypeId t) const { return features_[t]; }
  bool HasFeatures(TypeId t) const { return !features_[t].empty(); }

  TypeId target_type() const { return target_type_; }
  const std::vector<int32_t>& labels() const { return labels_; }
  int32_t num_classes() const { return num_classes_; }
  const std::vector<int32_t>& train_index() const { return train_index_; }
  const std::vector<int32_t>& val_index() const { return val_index_; }
  const std::vector<int32_t>& test_index() const { return test_index_; }

  /// Total node count over all types.
  int64_t TotalNodes() const;

  /// Total directed edge count over all relations.
  int64_t TotalEdges() const;

  /// Approximate storage footprint (adjacency + features + labels), used
  /// by the Table VII storage comparison. Counts logical bytes, identical
  /// for owned and mapped backings.
  size_t MemoryBytes() const;

  /// Heap bytes actually owned by this graph: ~MemoryBytes() for a heap
  /// load, only labels/splits for a mapped v3 graph (the arrays live in
  /// the page cache). Feeds the serve layer's store.resident_bytes gauge.
  size_t ResidentHeapBytes() const;

  /// True when any relation or feature matrix views a mapped container.
  bool IsMapped() const;

  /// 64-bit content hash over everything that affects computation results:
  /// type names/counts, relations (name, endpoints, full CSR arrays),
  /// features, labels, class count and splits. Two graphs with equal
  /// fingerprints are treated as interchangeable by pipeline::ArtifactCache
  /// (the 64-bit collision risk is accepted; see DESIGN.md, "Pipeline").
  /// Costs one linear pass over the graph — cheap next to any SpGEMM.
  uint64_t ContentFingerprint() const;

  /// Classifies every type into root/father/leaf by BFS distance from the
  /// target type over the (undirected) type-connectivity graph, per Fig. 5.
  /// Distance 0 = root, 1 = father, >=2 (or unreachable) = leaf.
  std::vector<TypeRole> ClassifySchema() const;

  /// Structural and bookkeeping consistency check. OK when every relation
  /// shape matches type counts, labels cover the target type, splits are
  /// in range, and feature row counts match.
  Status Validate() const;

  // --- Transformation ----------------------------------------------------

  /// Builds the induced subgraph keeping, for each type t, exactly the
  /// nodes in keep[t] (local ids, unique). Relations are restricted and
  /// remapped, features gathered, labels/splits rebuilt (all kept target
  /// nodes become the training set, matching the paper's protocol of
  /// training on the condensed graph). keep.size() must equal
  /// NumNodeTypes().
  Result<HeteroGraph> InducedSubgraph(
      const std::vector<std::vector<int32_t>>& keep) const;

 private:
  std::vector<std::string> type_names_;
  std::vector<int32_t> type_counts_;
  std::unordered_map<std::string, TypeId> type_index_;
  std::vector<Relation> relations_;
  std::vector<Matrix> features_;
  TypeId target_type_ = -1;
  std::vector<int32_t> labels_;
  int32_t num_classes_ = 0;
  std::vector<int32_t> train_index_;
  std::vector<int32_t> val_index_;
  std::vector<int32_t> test_index_;
};

}  // namespace freehgc

#endif  // FREEHGC_GRAPH_HETERO_GRAPH_H_
