#include "graph/hetero_graph.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/fnv.h"
#include "common/string_util.h"
#include "sparse/ops.h"

namespace freehgc {

Result<TypeId> HeteroGraph::AddNodeType(const std::string& name,
                                        int32_t count) {
  if (count < 0) return Status::InvalidArgument("negative node count");
  if (type_index_.count(name) > 0) {
    return Status::InvalidArgument("duplicate node type: " + name);
  }
  const TypeId id = static_cast<TypeId>(type_names_.size());
  type_names_.push_back(name);
  type_counts_.push_back(count);
  type_index_[name] = id;
  features_.emplace_back();
  return id;
}

Result<RelationId> HeteroGraph::AddRelation(const std::string& name,
                                            TypeId src, TypeId dst,
                                            CsrMatrix adj) {
  if (src < 0 || src >= NumNodeTypes() || dst < 0 || dst >= NumNodeTypes()) {
    return Status::InvalidArgument("relation endpoint type out of range");
  }
  if (adj.rows() != NodeCount(src) || adj.cols() != NodeCount(dst)) {
    return Status::InvalidArgument(StrFormat(
        "relation '%s' adjacency %dx%d does not match type counts %dx%d",
        name.c_str(), adj.rows(), adj.cols(), NodeCount(src),
        NodeCount(dst)));
  }
  const RelationId id = static_cast<RelationId>(relations_.size());
  relations_.push_back({name, src, dst, std::move(adj)});
  return id;
}

void HeteroGraph::EnsureReverseRelations(exec::ExecContext* ctx) {
  const size_t original = relations_.size();
  // Candidates: relations with no schema-level reverse. Self-relations
  // (src == dst) are their own reverse only when symmetric, so they stay
  // candidates and the symmetry check happens on the computed transpose.
  std::vector<size_t> candidates;
  for (size_t i = 0; i < original; ++i) {
    const TypeId src = relations_[i].src_type;
    const TypeId dst = relations_[i].dst_type;
    bool has_reverse = false;
    if (src != dst) {
      for (size_t j = 0; j < original; ++j) {
        if (j != i && relations_[j].src_type == dst &&
            relations_[j].dst_type == src) {
          has_reverse = true;
          break;
        }
      }
    }
    if (!has_reverse) candidates.push_back(i);
  }
  // Transposes are independent: one candidate per chunk, staged so the
  // append below preserves original relation order for any thread count.
  std::vector<CsrMatrix> transposed(candidates.size());
  exec::Resolve(ctx).ParallelFor(
      static_cast<int64_t>(candidates.size()), 1,
      [&](int64_t begin, int64_t end, exec::Workspace&) {
        for (int64_t k = begin; k < end; ++k) {
          transposed[static_cast<size_t>(k)] =
              sparse::Transpose(relations_[candidates[static_cast<size_t>(k)]]
                                    .adj);
        }
      });
  for (size_t k = 0; k < candidates.size(); ++k) {
    const size_t i = candidates[k];
    const TypeId src = relations_[i].src_type;
    const TypeId dst = relations_[i].dst_type;
    if (src == dst && transposed[k] == relations_[i].adj) continue;
    relations_.push_back(
        {"rev_" + relations_[i].name, dst, src, std::move(transposed[k])});
  }
}

Status HeteroGraph::SetFeatures(TypeId type, Matrix features) {
  if (type < 0 || type >= NumNodeTypes()) {
    return Status::InvalidArgument("type out of range");
  }
  if (features.rows() != NodeCount(type)) {
    return Status::InvalidArgument(
        StrFormat("feature rows %d != node count %d for type %s",
                  static_cast<int>(features.rows()), NodeCount(type),
                  TypeName(type).c_str()));
  }
  features_[type] = std::move(features);
  return Status::OK();
}

Status HeteroGraph::SetTarget(TypeId type, std::vector<int32_t> labels,
                              int32_t num_classes) {
  if (type < 0 || type >= NumNodeTypes()) {
    return Status::InvalidArgument("target type out of range");
  }
  if (static_cast<int32_t>(labels.size()) != NodeCount(type)) {
    return Status::InvalidArgument("labels size != target node count");
  }
  for (int32_t y : labels) {
    if (y < 0 || y >= num_classes) {
      return Status::OutOfRange("label outside [0, num_classes)");
    }
  }
  target_type_ = type;
  labels_ = std::move(labels);
  num_classes_ = num_classes;
  return Status::OK();
}

Status HeteroGraph::SetSplit(std::vector<int32_t> train,
                             std::vector<int32_t> val,
                             std::vector<int32_t> test) {
  if (target_type_ < 0) {
    return Status::FailedPrecondition("SetTarget must be called first");
  }
  const int32_t n = NodeCount(target_type_);
  for (const auto* split : {&train, &val, &test}) {
    for (int32_t v : *split) {
      if (v < 0 || v >= n) return Status::OutOfRange("split id out of range");
    }
  }
  train_index_ = std::move(train);
  val_index_ = std::move(val);
  test_index_ = std::move(test);
  return Status::OK();
}

Result<TypeId> HeteroGraph::TypeByName(const std::string& name) const {
  auto it = type_index_.find(name);
  if (it == type_index_.end()) {
    return Status::NotFound("no node type named " + name);
  }
  return it->second;
}

std::vector<RelationId> HeteroGraph::RelationsFrom(TypeId t) const {
  std::vector<RelationId> out;
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (relations_[i].src_type == t) out.push_back(static_cast<RelationId>(i));
  }
  return out;
}

std::vector<RelationId> HeteroGraph::RelationsTo(TypeId t) const {
  std::vector<RelationId> out;
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (relations_[i].dst_type == t) out.push_back(static_cast<RelationId>(i));
  }
  return out;
}

int64_t HeteroGraph::TotalNodes() const {
  int64_t n = 0;
  for (int32_t c : type_counts_) n += c;
  return n;
}

int64_t HeteroGraph::TotalEdges() const {
  int64_t e = 0;
  for (const auto& r : relations_) e += r.adj.nnz();
  return e;
}

size_t HeteroGraph::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& r : relations_) bytes += r.adj.MemoryBytes();
  for (const auto& f : features_) {
    bytes += static_cast<size_t>(f.size()) * sizeof(float);
  }
  bytes += labels_.size() * sizeof(int32_t);
  return bytes;
}

size_t HeteroGraph::ResidentHeapBytes() const {
  size_t bytes = 0;
  for (const auto& r : relations_) bytes += r.adj.OwnedBytes();
  for (const auto& f : features_) bytes += f.OwnedBytes();
  bytes += labels_.size() * sizeof(int32_t);
  bytes += (train_index_.size() + val_index_.size() + test_index_.size()) *
           sizeof(int32_t);
  return bytes;
}

bool HeteroGraph::IsMapped() const {
  for (const auto& r : relations_) {
    if (r.adj.is_mapped()) return true;
  }
  for (const auto& f : features_) {
    if (f.is_mapped()) return true;
  }
  return false;
}

uint64_t HeteroGraph::ContentFingerprint() const {
  // The byte sequence below is the canonical graph identity; the v3
  // container stores this exact hash in its header (computed while
  // streaming) so a mapped registration can skip the recompute.
  Fnv f;
  f.Tag(0x01);
  for (size_t t = 0; t < type_names_.size(); ++t) {
    f.Str(type_names_[t]);
    f.Pod(type_counts_[t]);
  }
  f.Tag(0x02);
  for (const auto& r : relations_) {
    f.Str(r.name);
    f.Pod(r.src_type);
    f.Pod(r.dst_type);
    f.Span(r.adj.indptr());
    f.Span(r.adj.indices());
    f.Span(r.adj.values());
  }
  f.Tag(0x03);
  for (const auto& feat : features_) {
    f.Pod(feat.rows());
    f.Pod(feat.cols());
    f.Bytes(feat.data(), static_cast<size_t>(feat.size()) * sizeof(float));
  }
  f.Tag(0x04);
  f.Pod(target_type_);
  f.Pod(num_classes_);
  f.Vec(labels_);
  f.Tag(0x05);
  f.Vec(train_index_);
  f.Vec(val_index_);
  f.Vec(test_index_);
  return f.h;
}

std::vector<TypeRole> HeteroGraph::ClassifySchema() const {
  const int32_t t = NumNodeTypes();
  std::vector<int32_t> dist(static_cast<size_t>(t), -1);
  if (target_type_ >= 0) {
    std::deque<TypeId> queue = {target_type_};
    dist[static_cast<size_t>(target_type_)] = 0;
    while (!queue.empty()) {
      const TypeId u = queue.front();
      queue.pop_front();
      for (const auto& r : relations_) {
        TypeId v = -1;
        if (r.src_type == u) v = r.dst_type;
        else if (r.dst_type == u) v = r.src_type;
        else continue;
        if (dist[static_cast<size_t>(v)] < 0) {
          dist[static_cast<size_t>(v)] = dist[static_cast<size_t>(u)] + 1;
          queue.push_back(v);
        }
      }
    }
  }
  // A father type is a *bridge*: it sits between the root and deeper
  // types (Fig. 5: "the father type is a bridge connecting the root type
  // and the leaf type"). Terminal types — no neighbor farther from the
  // root than themselves — are leaves even when directly adjacent to the
  // root (e.g. ACM's author/subject/term, which the paper condenses with
  // information-loss minimization).
  std::vector<TypeRole> roles(static_cast<size_t>(t), TypeRole::kLeaf);
  for (int32_t i = 0; i < t; ++i) {
    const int32_t di = dist[static_cast<size_t>(i)];
    if (di == 0) {
      roles[static_cast<size_t>(i)] = TypeRole::kRoot;
      continue;
    }
    if (di < 0) continue;  // disconnected from the target: leaf
    bool has_deeper_child = false;
    for (const auto& r : relations_) {
      TypeId other = -1;
      if (r.src_type == i) other = r.dst_type;
      else if (r.dst_type == i) other = r.src_type;
      else continue;
      if (dist[static_cast<size_t>(other)] > di) {
        has_deeper_child = true;
        break;
      }
    }
    if (has_deeper_child) roles[static_cast<size_t>(i)] = TypeRole::kFather;
  }
  return roles;
}

Status HeteroGraph::Validate() const {
  for (const auto& r : relations_) {
    if (r.src_type < 0 || r.src_type >= NumNodeTypes() || r.dst_type < 0 ||
        r.dst_type >= NumNodeTypes()) {
      return Status::Internal("relation endpoint out of range");
    }
    if (r.adj.rows() != NodeCount(r.src_type) ||
        r.adj.cols() != NodeCount(r.dst_type)) {
      return Status::Internal("relation '" + r.name + "' shape mismatch");
    }
  }
  for (TypeId t = 0; t < NumNodeTypes(); ++t) {
    if (HasFeatures(t) && features_[t].rows() != NodeCount(t)) {
      return Status::Internal("feature rows mismatch for " + TypeName(t));
    }
  }
  if (target_type_ >= 0) {
    if (static_cast<int32_t>(labels_.size()) != NodeCount(target_type_)) {
      return Status::Internal("labels size mismatch");
    }
    const int32_t n = NodeCount(target_type_);
    for (const auto* split : {&train_index_, &val_index_, &test_index_}) {
      for (int32_t v : *split) {
        if (v < 0 || v >= n) return Status::Internal("split out of range");
      }
    }
  }
  return Status::OK();
}

Result<HeteroGraph> HeteroGraph::InducedSubgraph(
    const std::vector<std::vector<int32_t>>& keep) const {
  if (static_cast<int32_t>(keep.size()) != NumNodeTypes()) {
    return Status::InvalidArgument("keep lists must cover every node type");
  }
  for (TypeId t = 0; t < NumNodeTypes(); ++t) {
    std::unordered_set<int32_t> seen;
    for (int32_t v : keep[static_cast<size_t>(t)]) {
      if (v < 0 || v >= NodeCount(t)) {
        return Status::OutOfRange(
            StrFormat("keep id %d out of range for type %s", v,
                      TypeName(t).c_str()));
      }
      if (!seen.insert(v).second) {
        return Status::InvalidArgument("duplicate keep id for type " +
                                       TypeName(t));
      }
    }
  }

  HeteroGraph out;
  for (TypeId t = 0; t < NumNodeTypes(); ++t) {
    auto added = out.AddNodeType(
        TypeName(t), static_cast<int32_t>(keep[static_cast<size_t>(t)].size()));
    if (!added.ok()) return added.status();
  }
  for (const auto& r : relations_) {
    CsrMatrix sub = sparse::Submatrix(
        r.adj, keep[static_cast<size_t>(r.src_type)],
        keep[static_cast<size_t>(r.dst_type)]);
    auto added = out.AddRelation(r.name, r.src_type, r.dst_type,
                                 std::move(sub));
    if (!added.ok()) return added.status();
  }
  for (TypeId t = 0; t < NumNodeTypes(); ++t) {
    if (HasFeatures(t)) {
      FREEHGC_RETURN_IF_ERROR(out.SetFeatures(
          t, features_[static_cast<size_t>(t)].GatherRows(
                 keep[static_cast<size_t>(t)])));
    }
  }
  if (target_type_ >= 0) {
    const auto& target_keep = keep[static_cast<size_t>(target_type_)];
    std::vector<int32_t> new_labels;
    new_labels.reserve(target_keep.size());
    for (int32_t v : target_keep) {
      new_labels.push_back(labels_[static_cast<size_t>(v)]);
    }
    FREEHGC_RETURN_IF_ERROR(
        out.SetTarget(target_type_, std::move(new_labels), num_classes_));
    // Every kept target node is a training example in the condensed graph.
    std::vector<int32_t> train(target_keep.size());
    for (size_t i = 0; i < target_keep.size(); ++i) {
      train[i] = static_cast<int32_t>(i);
    }
    FREEHGC_RETURN_IF_ERROR(out.SetSplit(std::move(train), {}, {}));
  }
  return out;
}

}  // namespace freehgc
