#include "graph/serialize.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <span>

#include "common/crc32.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "graph/serialize_internal.h"

namespace freehgc {

namespace {

using serialize_internal::ByteReader;
using serialize_internal::FilePtr;
using serialize_internal::kMagic;
using serialize_internal::kVersionLegacy;
using serialize_internal::kVersionV2;
using serialize_internal::kVersionV3;
using serialize_internal::ReadPod;
using serialize_internal::ReadString;
using serialize_internal::WriteBytes;
using serialize_internal::WritePod;
using serialize_internal::WriteString;

// Serialization targets a std::string (infallible appends); parsing reads
// from an in-memory view with bounds checks, which is what lets the
// version-2 container verify size and checksum before any graph state is
// built (and lets the serve layer parse uploads without touching disk).

template <typename T>
void WriteSpan(std::string& out, std::span<const T> v) {
  WritePod(out, static_cast<uint64_t>(v.size()));
  WriteBytes(out, v.data(), v.size() * sizeof(T));
}

template <typename T>
void WriteVec(std::string& out, const std::vector<T>& v) {
  WriteSpan(out, std::span<const T>(v));
}

void WriteCsr(std::string& out, const CsrMatrix& m) {
  WritePod(out, m.rows());
  WritePod(out, m.cols());
  WriteSpan(out, m.indptr());
  WriteSpan(out, m.indices());
  WriteSpan(out, m.values());
}

void WriteMatrix(std::string& out, const Matrix& m) {
  WritePod(out, m.rows());
  WritePod(out, m.cols());
  WriteBytes(out, m.data(), static_cast<size_t>(m.size()) * sizeof(float));
}

template <typename T>
bool ReadVec(ByteReader& r, std::vector<T>* v) {
  uint64_t n = 0;
  if (!ReadPod(r, &n) || n > (1ull << 33)) return false;
  v->resize(static_cast<size_t>(n));
  return r.Read(v->data(), static_cast<size_t>(n) * sizeof(T));
}

Result<CsrMatrix> ReadCsr(ByteReader& r) {
  int32_t rows = 0, cols = 0;
  std::vector<int64_t> indptr;
  std::vector<int32_t> indices;
  std::vector<float> values;
  if (!ReadPod(r, &rows) || !ReadPod(r, &cols) || !ReadVec(r, &indptr) ||
      !ReadVec(r, &indices) || !ReadVec(r, &values)) {
    return Status::Internal("truncated CSR block");
  }
  return CsrMatrix::FromParts(rows, cols, std::move(indptr),
                              std::move(indices), std::move(values));
}

Result<Matrix> ReadMatrix(ByteReader& r) {
  int64_t rows = 0, cols = 0;
  if (!ReadPod(r, &rows) || !ReadPod(r, &cols) || rows < 0 || cols < 0 ||
      rows * cols > (1ll << 33)) {
    return Status::Internal("truncated matrix header");
  }
  Matrix m(rows, cols);
  if (!r.Read(m.data(), static_cast<size_t>(m.size()) * sizeof(float))) {
    return Status::Internal("truncated matrix body");
  }
  return m;
}

/// Serializes the version-independent body (types, relations, features,
/// labels, splits).
void WriteBody(std::string& out, const HeteroGraph& g) {
  const int32_t num_types = g.NumNodeTypes();
  WritePod(out, num_types);
  for (TypeId t = 0; t < num_types; ++t) {
    WriteString(out, g.TypeName(t));
    WritePod(out, g.NodeCount(t));
  }
  const int32_t num_rel = g.NumRelations();
  WritePod(out, num_rel);
  for (RelationId r = 0; r < num_rel; ++r) {
    const Relation& rel = g.relation(r);
    WriteString(out, rel.name);
    WritePod(out, rel.src_type);
    WritePod(out, rel.dst_type);
    WriteCsr(out, rel.adj);
  }
  for (TypeId t = 0; t < num_types; ++t) {
    const uint8_t has = g.HasFeatures(t) ? 1 : 0;
    WritePod(out, has);
    if (has) WriteMatrix(out, g.Features(t));
  }
  const int32_t target = g.target_type();
  WritePod(out, target);
  if (target >= 0) {
    WritePod(out, g.num_classes());
    WriteVec(out, g.labels());
    WriteVec(out, g.train_index());
    WriteVec(out, g.val_index());
    WriteVec(out, g.test_index());
  }
}

/// Parses the body (everything past the header fields).
Result<HeteroGraph> ReadBody(ByteReader& r) {
  HeteroGraph g;
  int32_t num_types = 0;
  if (!ReadPod(r, &num_types) || num_types < 0 || num_types > 4096) {
    return Status::Internal("bad type count");
  }
  for (int32_t t = 0; t < num_types; ++t) {
    std::string name;
    int32_t count = 0;
    if (!ReadString(r, &name) || !ReadPod(r, &count)) {
      return Status::Internal("truncated type table");
    }
    auto added = g.AddNodeType(name, count);
    if (!added.ok()) return added.status();
  }
  int32_t num_rel = 0;
  if (!ReadPod(r, &num_rel) || num_rel < 0 || num_rel > 65536) {
    return Status::Internal("bad relation count");
  }
  for (int32_t rel_i = 0; rel_i < num_rel; ++rel_i) {
    std::string name;
    TypeId src = -1, dst = -1;
    if (!ReadString(r, &name) || !ReadPod(r, &src) || !ReadPod(r, &dst)) {
      return Status::Internal("truncated relation header");
    }
    FREEHGC_ASSIGN_OR_RETURN(CsrMatrix adj, ReadCsr(r));
    auto added = g.AddRelation(name, src, dst, std::move(adj));
    if (!added.ok()) return added.status();
  }
  for (int32_t t = 0; t < num_types; ++t) {
    uint8_t has = 0;
    if (!ReadPod(r, &has)) return Status::Internal("truncated flags");
    if (has) {
      FREEHGC_ASSIGN_OR_RETURN(Matrix m, ReadMatrix(r));
      FREEHGC_RETURN_IF_ERROR(g.SetFeatures(t, std::move(m)));
    }
  }
  int32_t target = -1;
  if (!ReadPod(r, &target)) return Status::Internal("truncated target");
  if (target >= 0) {
    int32_t num_classes = 0;
    std::vector<int32_t> labels, train, val, test;
    if (!ReadPod(r, &num_classes) || !ReadVec(r, &labels) ||
        !ReadVec(r, &train) || !ReadVec(r, &val) || !ReadVec(r, &test)) {
      return Status::Internal("truncated label block");
    }
    FREEHGC_RETURN_IF_ERROR(g.SetTarget(target, std::move(labels),
                                        num_classes));
    FREEHGC_RETURN_IF_ERROR(g.SetSplit(std::move(train), std::move(val),
                                       std::move(test)));
  }
  FREEHGC_RETURN_IF_ERROR(g.Validate());
  return g;
}

}  // namespace

Result<std::string> SerializeHeteroGraph(const HeteroGraph& g) {
  FREEHGC_RETURN_IF_ERROR(g.Validate());
  std::string body;
  WriteBody(body, g);
  const uint64_t size = body.size();
  const uint32_t crc = Crc32(body.data(), body.size());
  std::string out;
  out.reserve(sizeof(kMagic) + sizeof(kVersionV2) + sizeof(size) +
              sizeof(crc) + body.size());
  WritePod(out, kMagic);
  WritePod(out, kVersionV2);
  WritePod(out, size);
  WritePod(out, crc);
  out.append(body);
  return out;
}

Result<HeteroGraph> DeserializeHeteroGraph(std::string_view bytes) {
  ByteReader r(bytes);
  uint32_t magic = 0, version = 0;
  if (!ReadPod(r, &magic) || magic != kMagic) {
    return Status::InvalidArgument("not a FreeHGC graph container");
  }
  if (!ReadPod(r, &version)) {
    return Status::InvalidArgument("truncated graph container header");
  }
  if (version == kVersionV3) {
    // In-memory v3 buffers are transient, so the parse deep-copies into
    // owned storage instead of handing out views.
    return serialize_internal::ParseV3Memory(bytes);
  }
  size_t body_off = sizeof(magic) + sizeof(version);
  if (version == kVersionV2) {
    uint64_t size = 0;
    uint32_t crc = 0;
    if (!ReadPod(r, &size) || !ReadPod(r, &crc)) {
      return Status::InvalidArgument("truncated graph container header");
    }
    body_off += sizeof(size) + sizeof(crc);
    if (bytes.size() - body_off != size) {
      return Status::InvalidArgument(StrFormat(
          "truncated graph container: body has %zu of %llu bytes",
          bytes.size() - body_off, static_cast<unsigned long long>(size)));
    }
    const uint32_t actual = Crc32(bytes.data() + body_off, size);
    if (actual != crc) {
      return Status::InvalidArgument(StrFormat(
          "graph container checksum mismatch (stored %08x, computed %08x)",
          crc, actual));
    }
  } else if (version != kVersionLegacy) {
    return Status::InvalidArgument("unsupported graph file version");
  }
  // Version 1 has no size/checksum: the body parser's bounds checks are
  // the only truncation defense (kept for old files).
  return ReadBody(r);
}

namespace {

/// Writes `bytes` to a ".tmp" sibling of `path`, flushes it to stable
/// storage and atomically renames it into place, so a crash mid-write can
/// never leave a torn file under the target name.
Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  FilePtr f(std::fopen(tmp.c_str(), "wb"));
  if (!f) return Status::InvalidArgument("cannot open for write: " + tmp);
  if (std::fwrite(bytes.data(), 1, bytes.size(), f.get()) != bytes.size() ||
      std::fflush(f.get()) != 0 || ::fsync(::fileno(f.get())) != 0) {
    f.reset();
    std::remove(tmp.c_str());
    return Status::Internal("short write to " + tmp);
  }
  f.reset();
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

}  // namespace

Status SaveHeteroGraph(const HeteroGraph& g, const std::string& path) {
  FREEHGC_ASSIGN_OR_RETURN(std::string bytes, SerializeHeteroGraph(g));
  return WriteFileAtomic(path, bytes);
}

Result<HeteroGraph> LoadHeteroGraph(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::NotFound("cannot open: " + path);
  // Peek the header: v3 containers are mapped, never slurped to heap.
  uint32_t head[2] = {0, 0};
  const size_t head_n = std::fread(head, 1, sizeof(head), f.get());
  if (head_n == sizeof(head) && head[0] == kMagic && head[1] == kVersionV3) {
    f.reset();
    FREEHGC_ASSIGN_OR_RETURN(MappedGraph mg, MapHeteroGraphDetailed(path));
    return std::move(mg.graph);
  }
  std::string bytes(reinterpret_cast<const char*>(head), head_n);
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    bytes.append(buf, n);
  }
  if (std::ferror(f.get()) != 0) {
    return Status::Internal("read error: " + path);
  }
  auto g = DeserializeHeteroGraph(bytes);
  if (!g.ok() &&
      g.status().message().rfind("not a FreeHGC graph container", 0) == 0) {
    return Status::InvalidArgument("not a FreeHGC graph file: " + path);
  }
  return g;
}

namespace serialize_internal {

namespace {

template <typename T>
bool ReadPodF(std::FILE* f, T* v) {
  return std::fread(v, 1, sizeof(T), f) == sizeof(T);
}

bool ReadStringF(std::FILE* f, std::string* s) {
  uint32_t n = 0;
  if (!ReadPodF(f, &n) || n > (1u << 20)) return false;
  s->resize(n);
  return std::fread(s->data(), 1, n, f) == n;
}

/// Skips a length-prefixed array, returning its element count.
template <typename T>
bool SkipArrayF(std::FILE* f, uint64_t* count) {
  uint64_t n = 0;
  if (!ReadPodF(f, &n) || n > (1ull << 33)) return false;
  *count = n;
  return std::fseek(f, static_cast<long>(n * sizeof(T)), SEEK_CUR) == 0;
}

}  // namespace

Result<ContainerSummary> InspectLegacyContainer(const std::string& path,
                                                uint32_t version,
                                                std::FILE* f) {
  ContainerSummary out;
  out.version = version;
  out.crc_ok = true;  // v1 has no checksum to fail
  // The v1/v2 stream: magic, version, [size, crc (v2)], body.
  long body_off = static_cast<long>(2 * sizeof(uint32_t));
  if (version == kVersionV2) {
    uint64_t size = 0;
    uint32_t crc = 0;
    if (std::fseek(f, body_off, SEEK_SET) != 0 || !ReadPodF(f, &size) ||
        !ReadPodF(f, &crc)) {
      return Status::InvalidArgument("truncated graph container header");
    }
    body_off += static_cast<long>(sizeof(size) + sizeof(crc));
    // First pass: stream the body through the CRC in fixed-size chunks.
    uint32_t actual = 0;
    uint64_t seen = 0;
    char buf[1 << 16];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      actual = Crc32(buf, n, actual);
      seen += n;
    }
    if (std::ferror(f) != 0) return Status::Internal("read error: " + path);
    out.crc_ok = (seen == size && actual == crc);
  }
  // Second (or only) pass: walk the body structure, fseeking over array
  // payloads so nothing large is materialized.
  if (std::fseek(f, body_off, SEEK_SET) != 0) {
    return Status::InvalidArgument("truncated graph container: " + path);
  }
  const auto truncated = [&path]() {
    return Status::InvalidArgument("truncated graph container body: " + path);
  };
  int32_t num_types = 0;
  if (!ReadPodF(f, &num_types) || num_types < 0 || num_types > 4096) {
    return truncated();
  }
  for (int32_t t = 0; t < num_types; ++t) {
    std::string name;
    int32_t count = 0;
    if (!ReadStringF(f, &name) || !ReadPodF(f, &count)) return truncated();
    out.types.emplace_back(std::move(name), count);
  }
  int32_t num_rel = 0;
  if (!ReadPodF(f, &num_rel) || num_rel < 0 || num_rel > 65536) {
    return truncated();
  }
  for (int32_t i = 0; i < num_rel; ++i) {
    RelationSummary rs;
    uint64_t indptr_n = 0, nnz = 0, values_n = 0;
    if (!ReadStringF(f, &rs.name) || !ReadPodF(f, &rs.src_type) ||
        !ReadPodF(f, &rs.dst_type) || !ReadPodF(f, &rs.rows) ||
        !ReadPodF(f, &rs.cols) || !SkipArrayF<int64_t>(f, &indptr_n) ||
        !SkipArrayF<int32_t>(f, &nnz) || !SkipArrayF<float>(f, &values_n)) {
      return truncated();
    }
    rs.nnz = static_cast<int64_t>(nnz);
    out.relations.push_back(std::move(rs));
  }
  if (std::fseek(f, 0, SEEK_END) == 0) {
    out.file_bytes = static_cast<uint64_t>(std::ftell(f));
  }
  return out;
}

}  // namespace serialize_internal

namespace {

Result<std::vector<std::vector<std::string>>> ReadCsvRows(
    const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (!f) return Status::NotFound("cannot open: " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  int c;
  while ((c = std::fgetc(f.get())) != EOF) {
    if (c == '\n') {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) rows.push_back(Split(line, ','));
      line.clear();
    } else {
      line.push_back(static_cast<char>(c));
    }
  }
  if (!line.empty()) rows.push_back(Split(line, ','));
  return rows;
}

}  // namespace

Result<HeteroGraph> LoadHeteroGraphCsv(const std::string& dir,
                                       uint64_t seed) {
  HeteroGraph g;
  std::vector<int32_t> feat_dims;
  {
    FREEHGC_ASSIGN_OR_RETURN(auto rows, ReadCsvRows(dir + "/types.csv"));
    for (const auto& row : rows) {
      if (row.size() != 3) {
        return Status::InvalidArgument("types.csv rows need name,count,dim");
      }
      FREEHGC_ASSIGN_OR_RETURN(
          TypeId id, g.AddNodeType(row[0], std::atoi(row[1].c_str())));
      (void)id;
      feat_dims.push_back(std::atoi(row[2].c_str()));
    }
  }
  {
    FREEHGC_ASSIGN_OR_RETURN(auto rows, ReadCsvRows(dir + "/edges.csv"));
    // Group by (relation, src_type, dst_type).
    struct Key {
      std::string rel, src, dst;
    };
    std::vector<Key> order;
    std::vector<std::vector<CooEntry>> entries;
    auto find_group = [&](const std::string& rel, const std::string& src,
                          const std::string& dst) -> size_t {
      for (size_t i = 0; i < order.size(); ++i) {
        if (order[i].rel == rel) return i;
      }
      order.push_back({rel, src, dst});
      entries.emplace_back();
      return order.size() - 1;
    };
    for (const auto& row : rows) {
      if (row.size() != 5) {
        return Status::InvalidArgument(
            "edges.csv rows need relation,src_type,dst_type,src_id,dst_id");
      }
      const size_t gi = find_group(row[0], row[1], row[2]);
      entries[gi].push_back({std::atoi(row[3].c_str()),
                             std::atoi(row[4].c_str()), 1.0f});
    }
    for (size_t i = 0; i < order.size(); ++i) {
      FREEHGC_ASSIGN_OR_RETURN(TypeId src, g.TypeByName(order[i].src));
      FREEHGC_ASSIGN_OR_RETURN(TypeId dst, g.TypeByName(order[i].dst));
      FREEHGC_ASSIGN_OR_RETURN(
          CsrMatrix adj, CsrMatrix::FromCoo(g.NodeCount(src),
                                            g.NodeCount(dst),
                                            std::move(entries[i])));
      auto added = g.AddRelation(order[i].rel, src, dst, std::move(adj));
      if (!added.ok()) return added.status();
    }
    g.EnsureReverseRelations();
  }
  for (TypeId t = 0; t < g.NumNodeTypes(); ++t) {
    const std::string path = dir + "/features_" + g.TypeName(t) + ".csv";
    auto rows = ReadCsvRows(path);
    if (!rows.ok()) continue;  // features optional per type
    if (static_cast<int32_t>(rows->size()) != g.NodeCount(t)) {
      return Status::InvalidArgument("feature row count mismatch for " +
                                     g.TypeName(t));
    }
    const int64_t dim = feat_dims[static_cast<size_t>(t)];
    Matrix m(g.NodeCount(t), dim);
    for (size_t i = 0; i < rows->size(); ++i) {
      if (static_cast<int64_t>((*rows)[i].size()) != dim) {
        return Status::InvalidArgument("feature dim mismatch for " +
                                       g.TypeName(t));
      }
      for (int64_t d = 0; d < dim; ++d) {
        m.At(static_cast<int64_t>(i), d) =
            static_cast<float>(std::atof((*rows)[i][static_cast<size_t>(d)]
                                             .c_str()));
      }
    }
    FREEHGC_RETURN_IF_ERROR(g.SetFeatures(t, std::move(m)));
  }
  {
    FREEHGC_ASSIGN_OR_RETURN(auto rows, ReadCsvRows(dir + "/labels.csv"));
    if (rows.empty() || rows[0].size() != 3 || rows[0][0] != "target") {
      return Status::InvalidArgument(
          "labels.csv must start with 'target,<type>,<num_classes>'");
    }
    FREEHGC_ASSIGN_OR_RETURN(TypeId target, g.TypeByName(rows[0][1]));
    const int32_t num_classes = std::atoi(rows[0][2].c_str());
    std::vector<int32_t> labels(static_cast<size_t>(g.NodeCount(target)), 0);
    for (size_t i = 1; i < rows.size(); ++i) {
      if (rows[i].size() != 2) {
        return Status::InvalidArgument("labels.csv rows need id,label");
      }
      const int32_t id = std::atoi(rows[i][0].c_str());
      if (id < 0 || id >= g.NodeCount(target)) {
        return Status::OutOfRange("label id out of range");
      }
      labels[static_cast<size_t>(id)] = std::atoi(rows[i][1].c_str());
    }
    FREEHGC_RETURN_IF_ERROR(g.SetTarget(target, std::move(labels),
                                        num_classes));
    // Deterministic 24/6/70 split, matching the HGB protocol.
    const int32_t n = g.NodeCount(target);
    std::vector<int32_t> perm(static_cast<size_t>(n));
    for (int32_t i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
    Rng rng(seed);
    rng.Shuffle(perm);
    const int32_t n_train = static_cast<int32_t>(0.24 * n);
    const int32_t n_val = static_cast<int32_t>(0.06 * n);
    FREEHGC_RETURN_IF_ERROR(g.SetSplit(
        {perm.begin(), perm.begin() + n_train},
        {perm.begin() + n_train, perm.begin() + n_train + n_val},
        {perm.begin() + n_train + n_val, perm.end()}));
  }
  FREEHGC_RETURN_IF_ERROR(g.Validate());
  return g;
}

}  // namespace freehgc
