#include "graph/serialize.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "common/rng.h"
#include "common/string_util.h"

namespace freehgc {

namespace {

constexpr uint32_t kMagic = 0x46484743;  // "FHGC"
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBytes(std::FILE* f, const void* data, size_t n) {
  return std::fwrite(data, 1, n, f) == n;
}
bool ReadBytes(std::FILE* f, void* data, size_t n) {
  return std::fread(data, 1, n, f) == n;
}

template <typename T>
bool WritePod(std::FILE* f, const T& v) {
  return WriteBytes(f, &v, sizeof(T));
}
template <typename T>
bool ReadPod(std::FILE* f, T* v) {
  return ReadBytes(f, v, sizeof(T));
}

bool WriteString(std::FILE* f, const std::string& s) {
  const uint32_t n = static_cast<uint32_t>(s.size());
  return WritePod(f, n) && WriteBytes(f, s.data(), s.size());
}
bool ReadString(std::FILE* f, std::string* s) {
  uint32_t n = 0;
  if (!ReadPod(f, &n) || n > (1u << 20)) return false;
  s->resize(n);
  return ReadBytes(f, s->data(), n);
}

template <typename T>
bool WriteVec(std::FILE* f, const std::vector<T>& v) {
  const uint64_t n = v.size();
  return WritePod(f, n) && WriteBytes(f, v.data(), n * sizeof(T));
}
template <typename T>
bool ReadVec(std::FILE* f, std::vector<T>* v) {
  uint64_t n = 0;
  if (!ReadPod(f, &n) || n > (1ull << 33)) return false;
  v->resize(static_cast<size_t>(n));
  return ReadBytes(f, v->data(), static_cast<size_t>(n) * sizeof(T));
}

bool WriteCsr(std::FILE* f, const CsrMatrix& m) {
  return WritePod(f, m.rows()) && WritePod(f, m.cols()) &&
         WriteVec(f, m.indptr()) && WriteVec(f, m.indices()) &&
         WriteVec(f, m.values());
}

Result<CsrMatrix> ReadCsr(std::FILE* f) {
  int32_t rows = 0, cols = 0;
  std::vector<int64_t> indptr;
  std::vector<int32_t> indices;
  std::vector<float> values;
  if (!ReadPod(f, &rows) || !ReadPod(f, &cols) || !ReadVec(f, &indptr) ||
      !ReadVec(f, &indices) || !ReadVec(f, &values)) {
    return Status::Internal("truncated CSR block");
  }
  return CsrMatrix::FromParts(rows, cols, std::move(indptr),
                              std::move(indices), std::move(values));
}

bool WriteMatrix(std::FILE* f, const Matrix& m) {
  if (!WritePod(f, m.rows()) || !WritePod(f, m.cols())) return false;
  return WriteBytes(f, m.data(),
                    static_cast<size_t>(m.size()) * sizeof(float));
}

Result<Matrix> ReadMatrix(std::FILE* f) {
  int64_t rows = 0, cols = 0;
  if (!ReadPod(f, &rows) || !ReadPod(f, &cols) || rows < 0 || cols < 0 ||
      rows * cols > (1ll << 33)) {
    return Status::Internal("truncated matrix header");
  }
  Matrix m(rows, cols);
  if (!ReadBytes(f, m.data(), static_cast<size_t>(m.size()) * sizeof(float))) {
    return Status::Internal("truncated matrix body");
  }
  return m;
}

}  // namespace

Status SaveHeteroGraph(const HeteroGraph& g, const std::string& path) {
  FREEHGC_RETURN_IF_ERROR(g.Validate());
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::InvalidArgument("cannot open for write: " + path);
  bool ok = WritePod(f.get(), kMagic) && WritePod(f.get(), kVersion);
  const int32_t num_types = g.NumNodeTypes();
  ok = ok && WritePod(f.get(), num_types);
  for (TypeId t = 0; t < num_types && ok; ++t) {
    ok = WriteString(f.get(), g.TypeName(t)) &&
         WritePod(f.get(), g.NodeCount(t));
  }
  const int32_t num_rel = g.NumRelations();
  ok = ok && WritePod(f.get(), num_rel);
  for (RelationId r = 0; r < num_rel && ok; ++r) {
    const Relation& rel = g.relation(r);
    ok = WriteString(f.get(), rel.name) && WritePod(f.get(), rel.src_type) &&
         WritePod(f.get(), rel.dst_type) && WriteCsr(f.get(), rel.adj);
  }
  for (TypeId t = 0; t < num_types && ok; ++t) {
    const uint8_t has = g.HasFeatures(t) ? 1 : 0;
    ok = WritePod(f.get(), has) &&
         (!has || WriteMatrix(f.get(), g.Features(t)));
  }
  const int32_t target = g.target_type();
  ok = ok && WritePod(f.get(), target);
  if (target >= 0 && ok) {
    ok = WritePod(f.get(), g.num_classes()) && WriteVec(f.get(), g.labels()) &&
         WriteVec(f.get(), g.train_index()) &&
         WriteVec(f.get(), g.val_index()) && WriteVec(f.get(), g.test_index());
  }
  if (!ok) return Status::Internal("short write to " + path);
  return Status::OK();
}

Result<HeteroGraph> LoadHeteroGraph(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::NotFound("cannot open: " + path);
  uint32_t magic = 0, version = 0;
  if (!ReadPod(f.get(), &magic) || magic != kMagic) {
    return Status::InvalidArgument("not a FreeHGC graph file: " + path);
  }
  if (!ReadPod(f.get(), &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported graph file version");
  }
  HeteroGraph g;
  int32_t num_types = 0;
  if (!ReadPod(f.get(), &num_types) || num_types < 0 || num_types > 4096) {
    return Status::Internal("bad type count");
  }
  for (int32_t t = 0; t < num_types; ++t) {
    std::string name;
    int32_t count = 0;
    if (!ReadString(f.get(), &name) || !ReadPod(f.get(), &count)) {
      return Status::Internal("truncated type table");
    }
    auto added = g.AddNodeType(name, count);
    if (!added.ok()) return added.status();
  }
  int32_t num_rel = 0;
  if (!ReadPod(f.get(), &num_rel) || num_rel < 0 || num_rel > 65536) {
    return Status::Internal("bad relation count");
  }
  for (int32_t r = 0; r < num_rel; ++r) {
    std::string name;
    TypeId src = -1, dst = -1;
    if (!ReadString(f.get(), &name) || !ReadPod(f.get(), &src) ||
        !ReadPod(f.get(), &dst)) {
      return Status::Internal("truncated relation header");
    }
    FREEHGC_ASSIGN_OR_RETURN(CsrMatrix adj, ReadCsr(f.get()));
    auto added = g.AddRelation(name, src, dst, std::move(adj));
    if (!added.ok()) return added.status();
  }
  for (int32_t t = 0; t < num_types; ++t) {
    uint8_t has = 0;
    if (!ReadPod(f.get(), &has)) return Status::Internal("truncated flags");
    if (has) {
      FREEHGC_ASSIGN_OR_RETURN(Matrix m, ReadMatrix(f.get()));
      FREEHGC_RETURN_IF_ERROR(g.SetFeatures(t, std::move(m)));
    }
  }
  int32_t target = -1;
  if (!ReadPod(f.get(), &target)) return Status::Internal("truncated target");
  if (target >= 0) {
    int32_t num_classes = 0;
    std::vector<int32_t> labels, train, val, test;
    if (!ReadPod(f.get(), &num_classes) || !ReadVec(f.get(), &labels) ||
        !ReadVec(f.get(), &train) || !ReadVec(f.get(), &val) ||
        !ReadVec(f.get(), &test)) {
      return Status::Internal("truncated label block");
    }
    FREEHGC_RETURN_IF_ERROR(g.SetTarget(target, std::move(labels),
                                        num_classes));
    FREEHGC_RETURN_IF_ERROR(g.SetSplit(std::move(train), std::move(val),
                                       std::move(test)));
  }
  FREEHGC_RETURN_IF_ERROR(g.Validate());
  return g;
}

namespace {

Result<std::vector<std::vector<std::string>>> ReadCsvRows(
    const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (!f) return Status::NotFound("cannot open: " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  int c;
  while ((c = std::fgetc(f.get())) != EOF) {
    if (c == '\n') {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) rows.push_back(Split(line, ','));
      line.clear();
    } else {
      line.push_back(static_cast<char>(c));
    }
  }
  if (!line.empty()) rows.push_back(Split(line, ','));
  return rows;
}

}  // namespace

Result<HeteroGraph> LoadHeteroGraphCsv(const std::string& dir,
                                       uint64_t seed) {
  HeteroGraph g;
  std::vector<int32_t> feat_dims;
  {
    FREEHGC_ASSIGN_OR_RETURN(auto rows, ReadCsvRows(dir + "/types.csv"));
    for (const auto& row : rows) {
      if (row.size() != 3) {
        return Status::InvalidArgument("types.csv rows need name,count,dim");
      }
      FREEHGC_ASSIGN_OR_RETURN(
          TypeId id, g.AddNodeType(row[0], std::atoi(row[1].c_str())));
      (void)id;
      feat_dims.push_back(std::atoi(row[2].c_str()));
    }
  }
  {
    FREEHGC_ASSIGN_OR_RETURN(auto rows, ReadCsvRows(dir + "/edges.csv"));
    // Group by (relation, src_type, dst_type).
    struct Key {
      std::string rel, src, dst;
    };
    std::vector<Key> order;
    std::vector<std::vector<CooEntry>> entries;
    auto find_group = [&](const std::string& rel, const std::string& src,
                          const std::string& dst) -> size_t {
      for (size_t i = 0; i < order.size(); ++i) {
        if (order[i].rel == rel) return i;
      }
      order.push_back({rel, src, dst});
      entries.emplace_back();
      return order.size() - 1;
    };
    for (const auto& row : rows) {
      if (row.size() != 5) {
        return Status::InvalidArgument(
            "edges.csv rows need relation,src_type,dst_type,src_id,dst_id");
      }
      const size_t gi = find_group(row[0], row[1], row[2]);
      entries[gi].push_back({std::atoi(row[3].c_str()),
                             std::atoi(row[4].c_str()), 1.0f});
    }
    for (size_t i = 0; i < order.size(); ++i) {
      FREEHGC_ASSIGN_OR_RETURN(TypeId src, g.TypeByName(order[i].src));
      FREEHGC_ASSIGN_OR_RETURN(TypeId dst, g.TypeByName(order[i].dst));
      FREEHGC_ASSIGN_OR_RETURN(
          CsrMatrix adj, CsrMatrix::FromCoo(g.NodeCount(src),
                                            g.NodeCount(dst),
                                            std::move(entries[i])));
      auto added = g.AddRelation(order[i].rel, src, dst, std::move(adj));
      if (!added.ok()) return added.status();
    }
    g.EnsureReverseRelations();
  }
  for (TypeId t = 0; t < g.NumNodeTypes(); ++t) {
    const std::string path = dir + "/features_" + g.TypeName(t) + ".csv";
    auto rows = ReadCsvRows(path);
    if (!rows.ok()) continue;  // features optional per type
    if (static_cast<int32_t>(rows->size()) != g.NodeCount(t)) {
      return Status::InvalidArgument("feature row count mismatch for " +
                                     g.TypeName(t));
    }
    const int64_t dim = feat_dims[static_cast<size_t>(t)];
    Matrix m(g.NodeCount(t), dim);
    for (size_t i = 0; i < rows->size(); ++i) {
      if (static_cast<int64_t>((*rows)[i].size()) != dim) {
        return Status::InvalidArgument("feature dim mismatch for " +
                                       g.TypeName(t));
      }
      for (int64_t d = 0; d < dim; ++d) {
        m.At(static_cast<int64_t>(i), d) =
            static_cast<float>(std::atof((*rows)[i][static_cast<size_t>(d)]
                                             .c_str()));
      }
    }
    FREEHGC_RETURN_IF_ERROR(g.SetFeatures(t, std::move(m)));
  }
  {
    FREEHGC_ASSIGN_OR_RETURN(auto rows, ReadCsvRows(dir + "/labels.csv"));
    if (rows.empty() || rows[0].size() != 3 || rows[0][0] != "target") {
      return Status::InvalidArgument(
          "labels.csv must start with 'target,<type>,<num_classes>'");
    }
    FREEHGC_ASSIGN_OR_RETURN(TypeId target, g.TypeByName(rows[0][1]));
    const int32_t num_classes = std::atoi(rows[0][2].c_str());
    std::vector<int32_t> labels(static_cast<size_t>(g.NodeCount(target)), 0);
    for (size_t i = 1; i < rows.size(); ++i) {
      if (rows[i].size() != 2) {
        return Status::InvalidArgument("labels.csv rows need id,label");
      }
      const int32_t id = std::atoi(rows[i][0].c_str());
      if (id < 0 || id >= g.NodeCount(target)) {
        return Status::OutOfRange("label id out of range");
      }
      labels[static_cast<size_t>(id)] = std::atoi(rows[i][1].c_str());
    }
    FREEHGC_RETURN_IF_ERROR(g.SetTarget(target, std::move(labels),
                                        num_classes));
    // Deterministic 24/6/70 split, matching the HGB protocol.
    const int32_t n = g.NodeCount(target);
    std::vector<int32_t> perm(static_cast<size_t>(n));
    for (int32_t i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
    Rng rng(seed);
    rng.Shuffle(perm);
    const int32_t n_train = static_cast<int32_t>(0.24 * n);
    const int32_t n_val = static_cast<int32_t>(0.06 * n);
    FREEHGC_RETURN_IF_ERROR(g.SetSplit(
        {perm.begin(), perm.begin() + n_train},
        {perm.begin() + n_train, perm.begin() + n_train + n_val},
        {perm.begin() + n_train + n_val, perm.end()}));
  }
  FREEHGC_RETURN_IF_ERROR(g.Validate());
  return g;
}

}  // namespace freehgc
