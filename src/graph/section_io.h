#ifndef FREEHGC_GRAPH_SECTION_IO_H_
#define FREEHGC_GRAPH_SECTION_IO_H_

// The page-aligned section-file machinery shared by the v3 graph
// container and the artifact spill files: a fixed 4096-byte header, every
// array payload in its own page-aligned CRC-32-protected section, and a
// trailing ZIP-central-directory-style section table. The layout is the
// one PR 6 froze for v3 containers — this header just makes it reusable,
// parametrized on (magic, version, label), so a single CSR matrix or a
// set of dense feature blocks can be spooled to disk and mapped back as
// zero-copy ArrayRef views with the same integrity guarantees a graph
// container gets.

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mapped_file.h"
#include "common/result.h"
#include "common/status.h"
#include "sparse/csr.h"

namespace freehgc::section_io {

/// Section payloads start on 4096-byte boundaries, so a mapped int64/
/// float span is always suitably aligned (mmap returns page-aligned
/// bases).
inline constexpr uint64_t kAlign = 4096;
/// The fixed header page reserved at offset 0.
inline constexpr size_t kHeaderBytes = 4096;
inline constexpr uint32_t kSectionMagic = 0x46534543;  // "FSEC"
inline constexpr uint32_t kMaxSections = 1u << 20;

/// Section kinds. The numbering is shared between the graph container
/// and spill files (INDPTR/INDICES/VALUES index by relation ordinal,
/// FEATURES by type or block ordinal; META/LABELS/TRAIN/VAL/TEST use
/// index 0).
enum Kind : uint32_t {
  kMeta = 1,
  kIndptr = 2,
  kIndices = 3,
  kValues = 4,
  kFeatures = 5,
  kLabels = 6,
  kTrain = 7,
  kVal = 8,
  kTest = 9,
};

/// Human-readable kind name ("meta", "indptr", ...; "unknown" otherwise).
const char* KindName(uint32_t kind);

#pragma pack(push, 1)
/// The fixed file header (layout frozen since the v3 container).
struct FileHeader {
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t flags = 0;
  uint32_t section_count = 0;
  uint64_t file_size = 0;
  uint64_t table_offset = 0;
  uint64_t table_size = 0;
  uint64_t content_fingerprint = 0;
  uint32_t table_crc = 0;
  uint32_t header_crc = 0;  // CRC-32 of the preceding 52 bytes
};

/// One section table entry (layout frozen since the v3 container).
struct SectionEntry {
  uint32_t magic = kSectionMagic;
  uint32_t kind = 0;
  uint32_t index = 0;
  uint32_t crc = 0;
  uint64_t offset = 0;
  uint64_t size = 0;           // payload bytes
  uint64_t logical_count = 0;  // element count (rows+1, nnz, floats, ids)
  uint64_t reserved = 0;
};
#pragma pack(pop)

static_assert(sizeof(FileHeader) == 56, "section file header is frozen");
static_assert(sizeof(SectionEntry) == 48, "section entry layout is frozen");

/// Identifies one concrete section-file format: the magic/version pair
/// the header must carry and the label used in error messages ("v3" for
/// graph containers, "spill" for artifact spool files).
struct Format {
  uint32_t magic = 0;
  uint32_t version = 0;
  /// Error-message prefix for section-level diagnostics ("v3", "spill").
  const char* label = "?";
  /// What the file claims to be, for magic/version mismatch messages
  /// ("v3 graph container", "freehgc spill file").
  const char* describe = "section file";
};

/// The v3 graph container format ("FHGC", version 3).
Format GraphContainerFormat();

/// The artifact spill format ("FSPL", version 1) used by the tiered
/// ArtifactCache for composed adjacencies and propagated feature blocks.
Format SpillFormat();

inline constexpr uint32_t kSpillMagic = 0x4c505346;  // "FSPL"
inline constexpr uint32_t kSpillVersion = 1;

/// Streaming writer for section files. Sections are appended to a ".tmp"
/// sibling; Finish writes the table + header, fsyncs and atomically
/// renames into place, so a killed writer never leaves a torn file under
/// the target name. Destroying an unfinished writer deletes the temp
/// file.
class SectionWriter {
 public:
  static Result<SectionWriter> Create(const std::string& path,
                                      const Format& format);

  SectionWriter(SectionWriter&& other) noexcept;
  SectionWriter& operator=(SectionWriter&& other) noexcept;
  SectionWriter(const SectionWriter&) = delete;
  SectionWriter& operator=(const SectionWriter&) = delete;
  ~SectionWriter();

  /// Pads to the next page boundary and opens a section.
  Status BeginSection(uint32_t kind, uint32_t index);
  /// Appends payload bytes to the open section (CRC accumulated).
  Status Append(const void* data, size_t n);
  /// Closes the open section, recording its element count.
  Status EndSection(uint64_t logical_count);

  /// BeginSection + Append + EndSection for a whole array.
  template <typename T>
  Status WriteArraySection(uint32_t kind, uint32_t index,
                           std::span<const T> data) {
    FREEHGC_RETURN_IF_ERROR(BeginSection(kind, index));
    FREEHGC_RETURN_IF_ERROR(Append(data.data(), data.size() * sizeof(T)));
    return EndSection(data.size());
  }

  /// Records the content fingerprint the header will carry (required
  /// before Finish).
  Status SetContentFingerprint(uint64_t fingerprint);

  /// OK while the writer is open and unfinished.
  Status CheckOpen() const;

  /// Writes table + header, fsyncs, renames into place. Returns the
  /// final file size in bytes.
  Result<uint64_t> Finish();

  /// Deletes the temporary file without publishing anything.
  void Abandon();

 private:
  SectionWriter() = default;
  struct Impl;
  Impl* impl_ = nullptr;
};

/// A parsed, validated section file: header + section table over either a
/// held mapping (Map) or a caller-owned byte range (Parse). Structural
/// validation (magics, header/table CRCs, alignment, bounds, duplicate
/// detection) happens at construction; payload CRCs are verified
/// separately so callers choose between failing (load) and reporting
/// (inspect).
class SectionView {
 public:
  /// Maps `path` and validates its structure. The mapping is owned by
  /// the view (and by anything that copies keepalive()).
  static Result<SectionView> Map(const std::string& path,
                                 const Format& format);

  /// Validates a caller-owned byte range (no keepalive; spans handed out
  /// borrow `base`).
  static Result<SectionView> Parse(const uint8_t* base, size_t size,
                                   const Format& format);

  /// Section lookup by (kind, index); nullptr when absent.
  const SectionEntry* Find(uint32_t kind, uint32_t index) const;

  /// Locates a section and checks its payload is exactly `count`
  /// elements of `elem_size` bytes.
  Result<const SectionEntry*> RequireArray(uint32_t kind, uint32_t index,
                                           uint64_t count,
                                           size_t elem_size) const;

  /// Verifies one section's payload CRC.
  Status VerifyCrc(const SectionEntry& s) const;

  /// Verifies every payload CRC (sequential pass at CRC speed; on mapped
  /// views the readahead it triggers doubles as a warmup).
  Status VerifyAllCrcs() const;

  template <typename T>
  std::span<const T> Span(const SectionEntry& s) const {
    return {reinterpret_cast<const T*>(base_ + s.offset),
            static_cast<size_t>(s.size / sizeof(T))};
  }

  template <typename T>
  std::vector<T> Copy(const SectionEntry& s) const {
    std::vector<T> v(static_cast<size_t>(s.size / sizeof(T)));
    if (s.size > 0) std::memcpy(v.data(), base_ + s.offset, s.size);
    return v;
  }

  const uint8_t* base() const { return base_; }
  const FileHeader& header() const { return header_; }
  uint64_t fingerprint() const { return header_.content_fingerprint; }
  uint64_t file_bytes() const { return header_.file_size; }
  const std::vector<SectionEntry>& sections() const { return sections_; }

  /// The owning mapping (null for Parse views). Storage views built over
  /// the file hold this as their keepalive.
  const std::shared_ptr<const MappedFile>& mapping() const {
    return mapping_;
  }

 private:
  SectionView() = default;

  Format format_;
  std::shared_ptr<const MappedFile> mapping_;
  const uint8_t* base_ = nullptr;
  FileHeader header_;
  std::vector<SectionEntry> sections_;
  std::unordered_map<uint64_t, size_t> by_key_;  // (kind<<32|index) -> pos
};

/// Reads just the header page of `path` and returns its content
/// fingerprint when magic, version and header CRC all check out — the
/// cheap identity probe the orphan-spool GC uses (no payload IO).
Result<uint64_t> PeekFingerprint(const std::string& path,
                                 const Format& format);

// --- CSR spill files ------------------------------------------------------

/// Writes `m` as a standalone spill file (SpillFormat): a META section
/// with the shape, then indptr/indices/values sections. Crash-safe
/// (tmp + fsync + rename). `fingerprint` is stored in the header — the
/// tiered cache uses its entry-key hash, so a restored matrix can be
/// matched back to its cache slot without reading payloads. Returns the
/// file size in bytes.
Result<uint64_t> WriteCsrSpill(const CsrMatrix& m, const std::string& path,
                               uint64_t fingerprint);

/// Maps a WriteCsrSpill file back as a zero-copy view-backed CsrMatrix
/// (bit-identical to the spilled matrix; every section CRC verified).
/// The mapping stays alive for as long as the matrix (or any copy) does.
Result<CsrMatrix> MapCsrSpill(const std::string& path);

}  // namespace freehgc::section_io

#endif  // FREEHGC_GRAPH_SECTION_IO_H_
