#ifndef FREEHGC_GRAPH_SERIALIZE_INTERNAL_H_
#define FREEHGC_GRAPH_SERIALIZE_INTERNAL_H_

// Shared pieces of the container codecs: the v1/v2 byte-stream helpers in
// serialize.cc and the v3 page-aligned container in container_v3.cc both
// read length-prefixed strings and PODs from byte views, and both need the
// container magic / version registry to dispatch on.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "graph/serialize.h"

namespace freehgc {
namespace serialize_internal {

inline constexpr uint32_t kMagic = 0x46484743;  // "FHGC"
// Version 1: magic, version, body. Version 2 inserts a u64 body size and
// a CRC-32 of the body between the version field and the body, so loads
// reject truncated or corrupted containers before building any state.
// Version 3 is the page-aligned mappable container (container_v3.cc).
inline constexpr uint32_t kVersionLegacy = 1;
inline constexpr uint32_t kVersionV2 = 2;
inline constexpr uint32_t kVersionV3 = 3;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

inline void WriteBytes(std::string& out, const void* data, size_t n) {
  if (n > 0) out.append(static_cast<const char*>(data), n);
}

template <typename T>
void WritePod(std::string& out, const T& v) {
  WriteBytes(out, &v, sizeof(T));
}

inline void WriteString(std::string& out, const std::string& s) {
  WritePod(out, static_cast<uint32_t>(s.size()));
  WriteBytes(out, s.data(), s.size());
}

/// Bounds-checked reader over a byte view.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool Read(void* dst, size_t n) {
    if (data_.size() - pos_ < n) return false;
    if (n > 0) std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

template <typename T>
bool ReadPod(ByteReader& r, T* v) {
  return r.Read(v, sizeof(T));
}

inline bool ReadString(ByteReader& r, std::string* s) {
  uint32_t n = 0;
  if (!ReadPod(r, &n) || n > (1u << 20)) return false;
  s->resize(n);
  return r.Read(s->data(), n);
}

/// Structural inspection of a v1/v2 container by streaming the file
/// (implemented in serialize.cc, next to the body format it skips over).
Result<ContainerSummary> InspectLegacyContainer(const std::string& path,
                                                uint32_t version,
                                                std::FILE* f);

/// Parses an in-memory v3 container into owned storage (deep copy); the
/// upload path of the serve layer hands transient buffers here.
/// Implemented in container_v3.cc.
Result<HeteroGraph> ParseV3Memory(std::string_view bytes);

}  // namespace serialize_internal
}  // namespace freehgc

#endif  // FREEHGC_GRAPH_SERIALIZE_INTERNAL_H_
