#ifndef FREEHGC_GRAPH_SERIALIZE_H_
#define FREEHGC_GRAPH_SERIALIZE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mapped_file.h"
#include "common/result.h"
#include "common/status.h"
#include "graph/hetero_graph.h"

namespace freehgc {

/// Writes a HeteroGraph to a self-contained binary file (magic + version +
/// payload size + CRC-32 + types, relations as CSR, features, labels,
/// splits). Condensed graphs round-trip exactly, so a condensation can be
/// run once and shipped. Format version 2: the header carries the payload
/// byte count and a CRC-32 of the payload, so truncation and corruption
/// are detected before any graph state is constructed. Crash-safe: the
/// container is written to a ".tmp" sibling, fsynced, and atomically
/// renamed into place, so a killed writer never leaves a torn file under
/// the target name.
Status SaveHeteroGraph(const HeteroGraph& g, const std::string& path);

/// Reads a file written by SaveHeteroGraph or SaveHeteroGraphV3. Fails
/// with InvalidArgument on magic/version mismatch and, for version >= 2
/// containers, on truncation or checksum mismatch. Version-1 files (no
/// checksum) still load. v1/v2 load via the heap path; v3 files are
/// memory-mapped (the returned graph's storage views the mapping).
Result<HeteroGraph> LoadHeteroGraph(const std::string& path);

/// Serializes to the same self-contained container SaveHeteroGraph writes,
/// but in memory — the payload format of serve-layer graph uploads.
Result<std::string> SerializeHeteroGraph(const HeteroGraph& g);

/// Parses a container produced by SerializeHeteroGraph/SaveHeteroGraph
/// from memory, with the same integrity checks as LoadHeteroGraph.
/// Understands v1/v2 bodies and in-memory v3 containers (the latter are
/// deep-copied into owned storage, since the buffer is transient).
Result<HeteroGraph> DeserializeHeteroGraph(std::string_view bytes);

// --- v3 page-aligned container -------------------------------------------
//
// Format version 3 is a mappable container: a fixed 4096-byte header, every
// array payload in its own page-aligned section, and a section table (with
// per-section CRC-32) at the end of the file. MapHeteroGraph returns a
// HeteroGraph whose CSR adjacencies and feature matrices view the mapping
// directly — zero copies of indptr/indices/values/features; only the small
// label/split arrays are materialized on the heap. The header stores the
// graph's ContentFingerprint, so registration of a mapped graph never has
// to touch the large payload pages beyond CRC verification.

/// Outcome of writing a v3 container.
struct V3WriteSummary {
  uint64_t fingerprint = 0;  ///< content fingerprint stored in the header
  uint64_t file_bytes = 0;   ///< total container size on disk
  int64_t nodes = 0;         ///< total nodes across types
  int64_t edges = 0;         ///< total directed edges across relations
};

/// Streaming writer for v3 containers. Sections are written to a ".tmp"
/// sibling as they are appended, so a multi-gigabyte graph can be produced
/// without ever materializing it in memory (see datasets::GenerateToV3).
/// Call order: AddNodeType* (all types first), then AddRelation* /
/// feature blocks / SetTarget / SetSplit in any order, then
/// SetContentFingerprint, then Finish (which writes the meta section,
/// section table and header, fsyncs and atomically renames into place).
/// Destroying an unfinished writer deletes the temporary file.
class HeteroGraphV3Writer {
 public:
  static Result<HeteroGraphV3Writer> Create(const std::string& path);

  HeteroGraphV3Writer(HeteroGraphV3Writer&& other) noexcept;
  HeteroGraphV3Writer& operator=(HeteroGraphV3Writer&& other) noexcept;
  HeteroGraphV3Writer(const HeteroGraphV3Writer&) = delete;
  HeteroGraphV3Writer& operator=(const HeteroGraphV3Writer&) = delete;
  ~HeteroGraphV3Writer();

  /// Registers a node type; all types must be added before relations.
  Status AddNodeType(const std::string& name, int32_t count);

  /// Appends a relation; writes its indptr/indices/values sections now.
  Status AddRelation(const std::string& name, TypeId src, TypeId dst,
                     const CsrMatrix& adj);

  /// Starts the feature matrix of `type`; rows must equal its node count.
  Status BeginFeatures(TypeId type, int64_t rows, int64_t cols);
  /// Appends `num_rows` rows (row-major, cols floats each) to the open
  /// feature block. Rows may arrive in any chunking.
  Status AppendFeatureRows(const float* data, int64_t num_rows);
  /// Closes the feature block; fails if fewer rows arrived than declared.
  Status EndFeatures();

  /// Convenience: writes a whole feature matrix in one call.
  Status AddFeatures(TypeId type, const Matrix& features);

  /// Declares the target type with labels (one per target node).
  Status SetTarget(TypeId type, std::span<const int32_t> labels,
                   int32_t num_classes);

  /// Sets the train/val/test split (requires SetTarget first).
  Status SetSplit(std::span<const int32_t> train,
                  std::span<const int32_t> val,
                  std::span<const int32_t> test);

  /// Records the content fingerprint the header will carry. Required
  /// before Finish; must equal HeteroGraph::ContentFingerprint() of the
  /// graph the sections describe (SaveHeteroGraphV3 guarantees this; the
  /// streaming generator computes it incrementally).
  Status SetContentFingerprint(uint64_t fingerprint);

  /// Writes meta + section table + header, fsyncs, renames into place.
  Result<V3WriteSummary> Finish();

  /// Deletes the temporary file without publishing anything.
  void Abandon();

 private:
  HeteroGraphV3Writer() = default;
  struct Impl;
  Impl* impl_ = nullptr;
};

/// Writes `g` as a v3 container (crash-safe, atomic publish).
Result<V3WriteSummary> SaveHeteroGraphV3(const HeteroGraph& g,
                                         const std::string& path);

/// A mapped v3 graph plus the container metadata that came with it.
struct MappedGraph {
  HeteroGraph graph;         ///< storage views the mapping (zero-copy)
  uint64_t fingerprint = 0;  ///< content fingerprint from the header
  uint64_t file_bytes = 0;   ///< container size (== mapped bytes)
  /// The underlying mapping (also held by every view inside `graph`).
  /// Residency managers use it for madvise hints on cold/hot transitions.
  std::shared_ptr<const MappedFile> mapping;
};

/// Memory-maps a v3 container. Every section CRC is verified against the
/// mapping before any view is handed out; the mapping stays alive for as
/// long as any copy of the returned graph (or one of its matrices) does.
Result<MappedGraph> MapHeteroGraphDetailed(const std::string& path);

/// MapHeteroGraphDetailed without the metadata.
Result<HeteroGraph> MapHeteroGraph(const std::string& path);

// --- Container inspection -------------------------------------------------

/// One section table entry as reported by InspectContainer.
struct SectionSummary {
  std::string kind;         ///< "meta", "indptr", "indices", ...
  uint32_t index = 0;       ///< relation / type ordinal the section belongs to
  uint64_t offset = 0;      ///< byte offset in the file (4096-aligned)
  uint64_t size = 0;        ///< payload bytes
  uint64_t logical_count = 0;  ///< element count (rows+1, nnz, floats, ...)
  uint32_t stored_crc = 0;  ///< CRC-32 recorded in the table
  bool crc_ok = false;      ///< recomputed CRC matches
};

/// Per-relation structure as recorded in the meta section.
struct RelationSummary {
  std::string name;
  int32_t src_type = -1;
  int32_t dst_type = -1;
  int32_t rows = 0;
  int32_t cols = 0;
  int64_t nnz = 0;
};

/// Header/section-table view of a container, gathered without loading any
/// graph state. For v3 files the per-section CRCs are re-verified by
/// streaming the file; for v2 the single body CRC is checked; v1 has no
/// checksum (crc_ok is trivially true).
struct ContainerSummary {
  uint32_t version = 0;
  uint64_t file_bytes = 0;
  uint64_t fingerprint = 0;  ///< v3 only; 0 otherwise
  bool crc_ok = false;       ///< all checksums match
  bool spill = false;        ///< artifact spill file, not a graph container
  std::vector<std::pair<std::string, int64_t>> types;  ///< name, node count
  std::vector<RelationSummary> relations;
  std::vector<SectionSummary> sections;  ///< v3 only
};

/// Reads header, section table and structural metadata from any supported
/// container version, streaming the file for CRC verification (constant
/// memory; values are never materialized).
Result<ContainerSummary> InspectContainer(const std::string& path);

/// Inspects an artifact spill file (section_io::SpillFormat) the tiered
/// ArtifactCache writes: section table + CRC verification, `spill` set.
/// InspectContainer dispatches here automatically on the spill magic.
Result<ContainerSummary> InspectSpillFile(const std::string& path);

/// Loads a heterogeneous graph from plain CSV files, the interchange
/// format for bringing real datasets into the library:
///   <dir>/types.csv      rows "name,count,feat_dim"
///   <dir>/edges.csv      rows "relation,src_type,dst_type,src_id,dst_id"
///   <dir>/features_<type>.csv   one row of feat_dim floats per node
///                               (optional per type)
///   <dir>/labels.csv     rows "id,label"; first line "target,<type>,
///                        <num_classes>"
/// Reverse relations are added automatically; the split defaults to
/// 24/6/70 deterministic under `seed`.
Result<HeteroGraph> LoadHeteroGraphCsv(const std::string& dir,
                                       uint64_t seed = 1);

}  // namespace freehgc

#endif  // FREEHGC_GRAPH_SERIALIZE_H_
