#ifndef FREEHGC_GRAPH_SERIALIZE_H_
#define FREEHGC_GRAPH_SERIALIZE_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "graph/hetero_graph.h"

namespace freehgc {

/// Writes a HeteroGraph to a self-contained binary file (magic + version +
/// payload size + CRC-32 + types, relations as CSR, features, labels,
/// splits). Condensed graphs round-trip exactly, so a condensation can be
/// run once and shipped. Format version 2: the header carries the payload
/// byte count and a CRC-32 of the payload, so truncation and corruption
/// are detected before any graph state is constructed.
Status SaveHeteroGraph(const HeteroGraph& g, const std::string& path);

/// Reads a file written by SaveHeteroGraph. Fails with InvalidArgument on
/// magic/version mismatch and, for version-2 containers, on truncation or
/// checksum mismatch. Version-1 files (no checksum) still load.
Result<HeteroGraph> LoadHeteroGraph(const std::string& path);

/// Serializes to the same self-contained container SaveHeteroGraph writes,
/// but in memory — the payload format of serve-layer graph uploads.
Result<std::string> SerializeHeteroGraph(const HeteroGraph& g);

/// Parses a container produced by SerializeHeteroGraph/SaveHeteroGraph
/// from memory, with the same integrity checks as LoadHeteroGraph.
Result<HeteroGraph> DeserializeHeteroGraph(std::string_view bytes);

/// Loads a heterogeneous graph from plain CSV files, the interchange
/// format for bringing real datasets into the library:
///   <dir>/types.csv      rows "name,count,feat_dim"
///   <dir>/edges.csv      rows "relation,src_type,dst_type,src_id,dst_id"
///   <dir>/features_<type>.csv   one row of feat_dim floats per node
///                               (optional per type)
///   <dir>/labels.csv     rows "id,label"; first line "target,<type>,
///                        <num_classes>"
/// Reverse relations are added automatically; the split defaults to
/// 24/6/70 deterministic under `seed`.
Result<HeteroGraph> LoadHeteroGraphCsv(const std::string& dir,
                                       uint64_t seed = 1);

}  // namespace freehgc

#endif  // FREEHGC_GRAPH_SERIALIZE_H_
