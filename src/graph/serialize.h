#ifndef FREEHGC_GRAPH_SERIALIZE_H_
#define FREEHGC_GRAPH_SERIALIZE_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "graph/hetero_graph.h"

namespace freehgc {

/// Writes a HeteroGraph to a self-contained binary file (magic + version +
/// types, relations as CSR, features, labels, splits). Condensed graphs
/// round-trip exactly, so a condensation can be run once and shipped.
Status SaveHeteroGraph(const HeteroGraph& g, const std::string& path);

/// Reads a file written by SaveHeteroGraph. Fails with InvalidArgument on
/// magic/version mismatch and Internal on truncation.
Result<HeteroGraph> LoadHeteroGraph(const std::string& path);

/// Loads a heterogeneous graph from plain CSV files, the interchange
/// format for bringing real datasets into the library:
///   <dir>/types.csv      rows "name,count,feat_dim"
///   <dir>/edges.csv      rows "relation,src_type,dst_type,src_id,dst_id"
///   <dir>/features_<type>.csv   one row of feat_dim floats per node
///                               (optional per type)
///   <dir>/labels.csv     rows "id,label"; first line "target,<type>,
///                        <num_classes>"
/// Reverse relations are added automatically; the split defaults to
/// 24/6/70 deterministic under `seed`.
Result<HeteroGraph> LoadHeteroGraphCsv(const std::string& dir,
                                       uint64_t seed = 1);

}  // namespace freehgc

#endif  // FREEHGC_GRAPH_SERIALIZE_H_
