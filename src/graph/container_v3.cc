// Format version 3: the page-aligned, memory-mappable graph container.
//
// Layout (all integers little-endian, the only byte order we target):
//
//   [0, 4096)              fixed header (V3Header + zero padding)
//   [4096, table_offset)   sections, each starting on a 4096-byte boundary
//   [table_offset, EOF)    section table: section_count V3Section entries
//
// The section table lives at the END of the file (ZIP-central-directory
// style) so the writer can stream sections of unknown size without
// seeking; only the fixed-size header is patched at offset 0 on Finish.
// Every array payload (CSR indptr/indices/values, feature matrices,
// labels, splits) is its own section, page-aligned and CRC-32 protected,
// which is what lets MapHeteroGraph hand out zero-copy views: a mapped
// int64 span is valid because section offsets are multiples of 4096 and
// mmap returns page-aligned bases.

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "common/mapped_file.h"
#include "common/string_util.h"
#include "graph/serialize.h"
#include "graph/serialize_internal.h"

namespace freehgc {

namespace {

using serialize_internal::ByteReader;
using serialize_internal::FilePtr;
using serialize_internal::kMagic;
using serialize_internal::kVersionV3;
using serialize_internal::ReadPod;
using serialize_internal::ReadString;
using serialize_internal::WritePod;
using serialize_internal::WriteString;

constexpr uint64_t kV3Align = 4096;
constexpr size_t kV3HeaderBytes = 4096;
constexpr uint32_t kSectionMagic = 0x46534543;  // "FSEC"
constexpr uint32_t kMaxSections = 1u << 20;

// Section kinds. INDPTR/INDICES/VALUES index by relation ordinal,
// FEATURES by type ordinal; META/LABELS/TRAIN/VAL/TEST use index 0.
enum V3Kind : uint32_t {
  kMeta = 1,
  kIndptr = 2,
  kIndices = 3,
  kValues = 4,
  kFeatures = 5,
  kLabels = 6,
  kTrain = 7,
  kVal = 8,
  kTest = 9,
};

const char* KindName(uint32_t kind) {
  switch (kind) {
    case kMeta: return "meta";
    case kIndptr: return "indptr";
    case kIndices: return "indices";
    case kValues: return "values";
    case kFeatures: return "features";
    case kLabels: return "labels";
    case kTrain: return "train";
    case kVal: return "val";
    case kTest: return "test";
    default: return "unknown";
  }
}

#pragma pack(push, 1)
struct V3Header {
  uint32_t magic = kMagic;
  uint32_t version = kVersionV3;
  uint32_t flags = 0;
  uint32_t section_count = 0;
  uint64_t file_size = 0;
  uint64_t table_offset = 0;
  uint64_t table_size = 0;
  uint64_t content_fingerprint = 0;
  uint32_t table_crc = 0;
  uint32_t header_crc = 0;  // CRC-32 of the preceding 52 bytes
};

struct V3Section {
  uint32_t magic = kSectionMagic;
  uint32_t kind = 0;
  uint32_t index = 0;
  uint32_t crc = 0;
  uint64_t offset = 0;
  uint64_t size = 0;           // payload bytes
  uint64_t logical_count = 0;  // element count (rows+1, nnz, floats, ids)
  uint64_t reserved = 0;
};
#pragma pack(pop)

static_assert(sizeof(V3Header) == 56, "v3 header layout is frozen");
static_assert(sizeof(V3Section) == 48, "v3 section entry layout is frozen");

/// Staged metadata describing the sections; serialized into the META
/// section on Finish and parsed back on map.
struct V3Meta {
  struct TypeMeta {
    std::string name;
    int32_t count = 0;
    bool has_features = false;
    int64_t feat_rows = 0;
    int64_t feat_cols = 0;
  };
  std::vector<TypeMeta> types;
  std::vector<RelationSummary> relations;
  int32_t target = -1;
  int32_t num_classes = 0;
  uint64_t label_count = 0;
  uint64_t train_count = 0;
  uint64_t val_count = 0;
  uint64_t test_count = 0;
};

std::string SerializeMeta(const V3Meta& m) {
  std::string out;
  WritePod(out, static_cast<uint32_t>(m.types.size()));
  for (const auto& t : m.types) {
    WriteString(out, t.name);
    WritePod(out, t.count);
    WritePod(out, static_cast<uint8_t>(t.has_features ? 1 : 0));
    WritePod(out, t.feat_rows);
    WritePod(out, t.feat_cols);
  }
  WritePod(out, static_cast<uint32_t>(m.relations.size()));
  for (const auto& r : m.relations) {
    WriteString(out, r.name);
    WritePod(out, r.src_type);
    WritePod(out, r.dst_type);
    WritePod(out, r.rows);
    WritePod(out, r.cols);
    WritePod(out, r.nnz);
  }
  WritePod(out, m.target);
  if (m.target >= 0) {
    WritePod(out, m.num_classes);
    WritePod(out, m.label_count);
    WritePod(out, m.train_count);
    WritePod(out, m.val_count);
    WritePod(out, m.test_count);
  }
  return out;
}

Result<V3Meta> ParseMeta(std::string_view bytes) {
  V3Meta m;
  ByteReader r(bytes);
  uint32_t num_types = 0;
  if (!ReadPod(r, &num_types) || num_types > 4096) {
    return Status::InvalidArgument("v3 meta: bad type count");
  }
  m.types.resize(num_types);
  for (auto& t : m.types) {
    uint8_t has = 0;
    if (!ReadString(r, &t.name) || !ReadPod(r, &t.count) ||
        !ReadPod(r, &has) || !ReadPod(r, &t.feat_rows) ||
        !ReadPod(r, &t.feat_cols) || t.count < 0) {
      return Status::InvalidArgument("v3 meta: truncated type table");
    }
    t.has_features = has != 0;
  }
  uint32_t num_rel = 0;
  if (!ReadPod(r, &num_rel) || num_rel > 65536) {
    return Status::InvalidArgument("v3 meta: bad relation count");
  }
  m.relations.resize(num_rel);
  for (auto& rel : m.relations) {
    if (!ReadString(r, &rel.name) || !ReadPod(r, &rel.src_type) ||
        !ReadPod(r, &rel.dst_type) || !ReadPod(r, &rel.rows) ||
        !ReadPod(r, &rel.cols) || !ReadPod(r, &rel.nnz) || rel.nnz < 0) {
      return Status::InvalidArgument("v3 meta: truncated relation table");
    }
  }
  if (!ReadPod(r, &m.target)) {
    return Status::InvalidArgument("v3 meta: truncated target");
  }
  if (m.target >= 0) {
    if (!ReadPod(r, &m.num_classes) || !ReadPod(r, &m.label_count) ||
        !ReadPod(r, &m.train_count) || !ReadPod(r, &m.val_count) ||
        !ReadPod(r, &m.test_count)) {
      return Status::InvalidArgument("v3 meta: truncated label block");
    }
  }
  return m;
}

}  // namespace

// --- Writer ---------------------------------------------------------------

struct HeteroGraphV3Writer::Impl {
  std::string final_path;
  std::string tmp_path;
  FilePtr file;
  uint64_t offset = 0;  // bytes written so far
  std::vector<V3Section> sections;
  V3Meta meta;
  int64_t total_edges = 0;
  bool have_fingerprint = false;
  uint64_t fingerprint = 0;
  bool have_split = false;
  bool finished = false;

  // Open section accumulation.
  uint32_t cur_kind = 0;
  uint32_t cur_index = 0;
  uint32_t cur_crc = 0;
  uint64_t cur_size = 0;
  uint64_t cur_off = 0;

  // Open feature block.
  bool feat_open = false;
  TypeId feat_type = -1;
  int64_t feat_rows_left = 0;
  int64_t feat_cols = 0;

  Status WriteRaw(const void* data, size_t n) {
    if (n > 0 && std::fwrite(data, 1, n, file.get()) != n) {
      return Status::Internal("short write to " + tmp_path);
    }
    offset += n;
    return Status::OK();
  }

  /// Zero-pads to the next 4096-byte boundary.
  Status Pad() {
    static const char zeros[kV3Align] = {};
    const uint64_t rem = offset % kV3Align;
    if (rem == 0) return Status::OK();
    return WriteRaw(zeros, static_cast<size_t>(kV3Align - rem));
  }

  Status BeginSection(uint32_t kind, uint32_t index) {
    FREEHGC_RETURN_IF_ERROR(Pad());
    cur_kind = kind;
    cur_index = index;
    cur_crc = 0;
    cur_size = 0;
    cur_off = offset;
    return Status::OK();
  }

  Status Append(const void* data, size_t n) {
    FREEHGC_RETURN_IF_ERROR(WriteRaw(data, n));
    cur_crc = Crc32(data, n, cur_crc);
    cur_size += n;
    return Status::OK();
  }

  void EndSection(uint64_t logical_count) {
    V3Section s;
    s.kind = cur_kind;
    s.index = cur_index;
    s.crc = cur_crc;
    s.offset = cur_off;
    s.size = cur_size;
    s.logical_count = logical_count;
    sections.push_back(s);
  }

  template <typename T>
  Status WriteArraySection(uint32_t kind, uint32_t index,
                           std::span<const T> data) {
    FREEHGC_RETURN_IF_ERROR(BeginSection(kind, index));
    FREEHGC_RETURN_IF_ERROR(Append(data.data(), data.size() * sizeof(T)));
    EndSection(data.size());
    return Status::OK();
  }

  Status CheckOpen() const {
    if (!file) return Status::FailedPrecondition("v3 writer is not open");
    if (finished) {
      return Status::FailedPrecondition("v3 writer already finished");
    }
    return Status::OK();
  }
};

Result<HeteroGraphV3Writer> HeteroGraphV3Writer::Create(
    const std::string& path) {
  auto impl = std::make_unique<Impl>();
  impl->final_path = path;
  impl->tmp_path = path + ".tmp";
  impl->file.reset(std::fopen(impl->tmp_path.c_str(), "wb"));
  if (!impl->file) {
    return Status::InvalidArgument("cannot open for write: " +
                                   impl->tmp_path);
  }
  // Reserve the header page; the real header is patched in on Finish.
  static const char zeros[kV3HeaderBytes] = {};
  FREEHGC_RETURN_IF_ERROR(impl->WriteRaw(zeros, sizeof(zeros)));
  HeteroGraphV3Writer w;
  w.impl_ = impl.release();
  return w;
}

HeteroGraphV3Writer::HeteroGraphV3Writer(HeteroGraphV3Writer&& other) noexcept
    : impl_(other.impl_) {
  other.impl_ = nullptr;
}

HeteroGraphV3Writer& HeteroGraphV3Writer::operator=(
    HeteroGraphV3Writer&& other) noexcept {
  if (this != &other) {
    Abandon();
    impl_ = other.impl_;
    other.impl_ = nullptr;
  }
  return *this;
}

HeteroGraphV3Writer::~HeteroGraphV3Writer() { Abandon(); }

void HeteroGraphV3Writer::Abandon() {
  if (impl_ == nullptr) return;
  if (impl_->file && !impl_->finished) {
    impl_->file.reset();
    std::remove(impl_->tmp_path.c_str());
  }
  delete impl_;
  impl_ = nullptr;
}

Status HeteroGraphV3Writer::AddNodeType(const std::string& name,
                                        int32_t count) {
  FREEHGC_RETURN_IF_ERROR(impl_->CheckOpen());
  if (count < 0) return Status::InvalidArgument("negative node count");
  for (const auto& t : impl_->meta.types) {
    if (t.name == name) {
      return Status::InvalidArgument("duplicate node type: " + name);
    }
  }
  impl_->meta.types.push_back({name, count, false, 0, 0});
  return Status::OK();
}

Status HeteroGraphV3Writer::AddRelation(const std::string& name, TypeId src,
                                        TypeId dst, const CsrMatrix& adj) {
  FREEHGC_RETURN_IF_ERROR(impl_->CheckOpen());
  const auto num_types = static_cast<TypeId>(impl_->meta.types.size());
  if (src < 0 || src >= num_types || dst < 0 || dst >= num_types) {
    return Status::InvalidArgument("relation endpoint type out of range");
  }
  if (adj.rows() != impl_->meta.types[static_cast<size_t>(src)].count ||
      adj.cols() != impl_->meta.types[static_cast<size_t>(dst)].count) {
    return Status::InvalidArgument(
        "relation adjacency shape does not match type counts: " + name);
  }
  const auto index = static_cast<uint32_t>(impl_->meta.relations.size());
  FREEHGC_RETURN_IF_ERROR(
      impl_->WriteArraySection(kIndptr, index, adj.indptr()));
  FREEHGC_RETURN_IF_ERROR(
      impl_->WriteArraySection(kIndices, index, adj.indices()));
  FREEHGC_RETURN_IF_ERROR(
      impl_->WriteArraySection(kValues, index, adj.values()));
  impl_->meta.relations.push_back(
      {name, src, dst, adj.rows(), adj.cols(), adj.nnz()});
  impl_->total_edges += adj.nnz();
  return Status::OK();
}

Status HeteroGraphV3Writer::BeginFeatures(TypeId type, int64_t rows,
                                          int64_t cols) {
  FREEHGC_RETURN_IF_ERROR(impl_->CheckOpen());
  if (impl_->feat_open) {
    return Status::FailedPrecondition("feature block already open");
  }
  const auto num_types = static_cast<TypeId>(impl_->meta.types.size());
  if (type < 0 || type >= num_types) {
    return Status::InvalidArgument("feature type out of range");
  }
  auto& tm = impl_->meta.types[static_cast<size_t>(type)];
  if (tm.has_features) {
    return Status::InvalidArgument("features already written for " + tm.name);
  }
  if (rows != tm.count || cols < 0) {
    return Status::InvalidArgument("feature shape mismatch for " + tm.name);
  }
  FREEHGC_RETURN_IF_ERROR(
      impl_->BeginSection(kFeatures, static_cast<uint32_t>(type)));
  impl_->feat_open = true;
  impl_->feat_type = type;
  impl_->feat_rows_left = rows;
  impl_->feat_cols = cols;
  return Status::OK();
}

Status HeteroGraphV3Writer::AppendFeatureRows(const float* data,
                                              int64_t num_rows) {
  FREEHGC_RETURN_IF_ERROR(impl_->CheckOpen());
  if (!impl_->feat_open) {
    return Status::FailedPrecondition("no open feature block");
  }
  if (num_rows < 0 || num_rows > impl_->feat_rows_left) {
    return Status::InvalidArgument("feature rows exceed declared count");
  }
  const size_t bytes = static_cast<size_t>(num_rows) *
                       static_cast<size_t>(impl_->feat_cols) * sizeof(float);
  FREEHGC_RETURN_IF_ERROR(impl_->Append(data, bytes));
  impl_->feat_rows_left -= num_rows;
  return Status::OK();
}

Status HeteroGraphV3Writer::EndFeatures() {
  FREEHGC_RETURN_IF_ERROR(impl_->CheckOpen());
  if (!impl_->feat_open) {
    return Status::FailedPrecondition("no open feature block");
  }
  if (impl_->feat_rows_left != 0) {
    return Status::InvalidArgument("feature block closed short of rows");
  }
  auto& tm = impl_->meta.types[static_cast<size_t>(impl_->feat_type)];
  tm.has_features = true;
  tm.feat_rows = tm.count;
  tm.feat_cols = impl_->feat_cols;
  impl_->EndSection(static_cast<uint64_t>(tm.feat_rows) *
                    static_cast<uint64_t>(tm.feat_cols));
  impl_->feat_open = false;
  impl_->feat_type = -1;
  return Status::OK();
}

Status HeteroGraphV3Writer::AddFeatures(TypeId type, const Matrix& features) {
  FREEHGC_RETURN_IF_ERROR(BeginFeatures(type, features.rows(),
                                        features.cols()));
  FREEHGC_RETURN_IF_ERROR(AppendFeatureRows(features.data(),
                                            features.rows()));
  return EndFeatures();
}

Status HeteroGraphV3Writer::SetTarget(TypeId type,
                                      std::span<const int32_t> labels,
                                      int32_t num_classes) {
  FREEHGC_RETURN_IF_ERROR(impl_->CheckOpen());
  const auto num_types = static_cast<TypeId>(impl_->meta.types.size());
  if (type < 0 || type >= num_types) {
    return Status::InvalidArgument("target type out of range");
  }
  if (impl_->meta.target >= 0) {
    return Status::FailedPrecondition("target already set");
  }
  const auto count =
      static_cast<size_t>(impl_->meta.types[static_cast<size_t>(type)].count);
  if (labels.size() != count) {
    return Status::InvalidArgument("label count does not match target type");
  }
  FREEHGC_RETURN_IF_ERROR(impl_->WriteArraySection(kLabels, 0, labels));
  impl_->meta.target = type;
  impl_->meta.num_classes = num_classes;
  impl_->meta.label_count = labels.size();
  return Status::OK();
}

Status HeteroGraphV3Writer::SetSplit(std::span<const int32_t> train,
                                     std::span<const int32_t> val,
                                     std::span<const int32_t> test) {
  FREEHGC_RETURN_IF_ERROR(impl_->CheckOpen());
  if (impl_->meta.target < 0) {
    return Status::FailedPrecondition("SetSplit requires SetTarget first");
  }
  if (impl_->have_split) {
    return Status::FailedPrecondition("split already set");
  }
  FREEHGC_RETURN_IF_ERROR(impl_->WriteArraySection(kTrain, 0, train));
  FREEHGC_RETURN_IF_ERROR(impl_->WriteArraySection(kVal, 0, val));
  FREEHGC_RETURN_IF_ERROR(impl_->WriteArraySection(kTest, 0, test));
  impl_->meta.train_count = train.size();
  impl_->meta.val_count = val.size();
  impl_->meta.test_count = test.size();
  impl_->have_split = true;
  return Status::OK();
}

Status HeteroGraphV3Writer::SetContentFingerprint(uint64_t fingerprint) {
  FREEHGC_RETURN_IF_ERROR(impl_->CheckOpen());
  impl_->fingerprint = fingerprint;
  impl_->have_fingerprint = true;
  return Status::OK();
}

Result<V3WriteSummary> HeteroGraphV3Writer::Finish() {
  FREEHGC_RETURN_IF_ERROR(impl_->CheckOpen());
  if (impl_->feat_open) {
    return Status::FailedPrecondition("unclosed feature block");
  }
  if (!impl_->have_fingerprint) {
    return Status::FailedPrecondition(
        "SetContentFingerprint required before Finish");
  }
  // Meta section, then the table on the next page boundary.
  const std::string meta = SerializeMeta(impl_->meta);
  FREEHGC_RETURN_IF_ERROR(impl_->BeginSection(kMeta, 0));
  FREEHGC_RETURN_IF_ERROR(impl_->Append(meta.data(), meta.size()));
  impl_->EndSection(meta.size());
  FREEHGC_RETURN_IF_ERROR(impl_->Pad());

  V3Header h;
  h.section_count = static_cast<uint32_t>(impl_->sections.size());
  h.table_offset = impl_->offset;
  h.table_size = impl_->sections.size() * sizeof(V3Section);
  h.content_fingerprint = impl_->fingerprint;
  std::string table;
  table.reserve(h.table_size);
  for (const auto& s : impl_->sections) {
    table.append(reinterpret_cast<const char*>(&s), sizeof(s));
  }
  h.table_crc = Crc32(table.data(), table.size());
  FREEHGC_RETURN_IF_ERROR(impl_->WriteRaw(table.data(), table.size()));
  h.file_size = impl_->offset;
  h.header_crc = Crc32(&h, offsetof(V3Header, header_crc));

  char page[kV3HeaderBytes] = {};
  std::memcpy(page, &h, sizeof(h));
  if (std::fseek(impl_->file.get(), 0, SEEK_SET) != 0 ||
      std::fwrite(page, 1, sizeof(page), impl_->file.get()) !=
          sizeof(page) ||
      std::fflush(impl_->file.get()) != 0 ||
      ::fsync(::fileno(impl_->file.get())) != 0) {
    return Status::Internal("cannot finalize " + impl_->tmp_path);
  }
  impl_->file.reset();
  if (std::rename(impl_->tmp_path.c_str(), impl_->final_path.c_str()) != 0) {
    std::remove(impl_->tmp_path.c_str());
    return Status::Internal("cannot rename " + impl_->tmp_path + " to " +
                            impl_->final_path);
  }
  impl_->finished = true;

  V3WriteSummary summary;
  summary.fingerprint = impl_->fingerprint;
  summary.file_bytes = h.file_size;
  for (const auto& t : impl_->meta.types) summary.nodes += t.count;
  summary.edges = impl_->total_edges;
  return summary;
}

Result<V3WriteSummary> SaveHeteroGraphV3(const HeteroGraph& g,
                                         const std::string& path) {
  FREEHGC_RETURN_IF_ERROR(g.Validate());
  FREEHGC_ASSIGN_OR_RETURN(HeteroGraphV3Writer w,
                           HeteroGraphV3Writer::Create(path));
  for (TypeId t = 0; t < g.NumNodeTypes(); ++t) {
    FREEHGC_RETURN_IF_ERROR(w.AddNodeType(g.TypeName(t), g.NodeCount(t)));
  }
  for (RelationId r = 0; r < g.NumRelations(); ++r) {
    const Relation& rel = g.relation(r);
    FREEHGC_RETURN_IF_ERROR(
        w.AddRelation(rel.name, rel.src_type, rel.dst_type, rel.adj));
  }
  for (TypeId t = 0; t < g.NumNodeTypes(); ++t) {
    if (g.HasFeatures(t)) {
      FREEHGC_RETURN_IF_ERROR(w.AddFeatures(t, g.Features(t)));
    }
  }
  if (g.target_type() >= 0) {
    FREEHGC_RETURN_IF_ERROR(
        w.SetTarget(g.target_type(), g.labels(), g.num_classes()));
    FREEHGC_RETURN_IF_ERROR(
        w.SetSplit(g.train_index(), g.val_index(), g.test_index()));
  }
  FREEHGC_RETURN_IF_ERROR(w.SetContentFingerprint(g.ContentFingerprint()));
  return w.Finish();
}

// --- Reader ---------------------------------------------------------------

namespace {

struct ParsedTable {
  V3Header header;
  std::vector<V3Section> sections;
  // (kind, index) -> position in `sections`.
  std::unordered_map<uint64_t, size_t> by_key;

  const V3Section* Find(uint32_t kind, uint32_t index) const {
    auto it = by_key.find((static_cast<uint64_t>(kind) << 32) | index);
    return it == by_key.end() ? nullptr : &sections[it->second];
  }
};

/// Validates header + section table structure (magics, CRCs, alignment,
/// bounds). Section payload CRCs are NOT verified here; callers decide
/// whether to fail (map/load) or report (inspect).
Result<ParsedTable> ParseTable(const uint8_t* base, size_t size) {
  ParsedTable t;
  if (size < kV3HeaderBytes) {
    return Status::InvalidArgument("v3 container shorter than its header");
  }
  std::memcpy(&t.header, base, sizeof(t.header));
  const V3Header& h = t.header;
  if (h.magic != kMagic || h.version != kVersionV3) {
    return Status::InvalidArgument("not a v3 graph container");
  }
  const uint32_t actual_hcrc = Crc32(&h, offsetof(V3Header, header_crc));
  if (actual_hcrc != h.header_crc) {
    return Status::InvalidArgument(StrFormat(
        "v3 header checksum mismatch (stored %08x, computed %08x)",
        h.header_crc, actual_hcrc));
  }
  if (h.file_size != size) {
    return Status::InvalidArgument(StrFormat(
        "v3 container truncated: %zu of %llu bytes", size,
        static_cast<unsigned long long>(h.file_size)));
  }
  if (h.section_count > kMaxSections ||
      h.table_size != h.section_count * sizeof(V3Section) ||
      h.table_offset < kV3HeaderBytes ||
      h.table_offset % kV3Align != 0 ||
      h.table_offset + h.table_size != size) {
    return Status::InvalidArgument("v3 section table out of bounds");
  }
  const uint32_t actual_tcrc = Crc32(base + h.table_offset, h.table_size);
  if (actual_tcrc != h.table_crc) {
    return Status::InvalidArgument(StrFormat(
        "v3 section table checksum mismatch (stored %08x, computed %08x)",
        h.table_crc, actual_tcrc));
  }
  t.sections.resize(h.section_count);
  if (h.table_size > 0) {
    std::memcpy(t.sections.data(), base + h.table_offset, h.table_size);
  }
  for (size_t i = 0; i < t.sections.size(); ++i) {
    const V3Section& s = t.sections[i];
    if (s.magic != kSectionMagic) {
      return Status::InvalidArgument("v3 section entry magic mismatch");
    }
    if (s.offset % kV3Align != 0) {
      return Status::InvalidArgument(StrFormat(
          "v3 section %s[%u] misaligned (offset %llu)", KindName(s.kind),
          s.index, static_cast<unsigned long long>(s.offset)));
    }
    if (s.offset < kV3HeaderBytes || s.offset > h.table_offset ||
        s.size > h.table_offset - s.offset) {
      return Status::InvalidArgument(StrFormat(
          "v3 section %s[%u] out of bounds", KindName(s.kind), s.index));
    }
    const uint64_t key = (static_cast<uint64_t>(s.kind) << 32) | s.index;
    if (!t.by_key.emplace(key, i).second) {
      return Status::InvalidArgument(StrFormat(
          "v3 duplicate section %s[%u]", KindName(s.kind), s.index));
    }
  }
  return t;
}

Status VerifySectionCrc(const uint8_t* base, const V3Section& s) {
  const uint32_t actual = Crc32(base + s.offset, s.size);
  if (actual != s.crc) {
    return Status::InvalidArgument(StrFormat(
        "v3 section %s[%u] checksum mismatch (stored %08x, computed %08x)",
        KindName(s.kind), s.index, s.crc, actual));
  }
  return Status::OK();
}

/// Locates a section and checks its payload is exactly `count` elements
/// of `elem_size` bytes.
Result<const V3Section*> RequireArray(const ParsedTable& t, uint32_t kind,
                                      uint32_t index, uint64_t count,
                                      size_t elem_size) {
  const V3Section* s = t.Find(kind, index);
  if (s == nullptr) {
    return Status::InvalidArgument(StrFormat(
        "v3 container missing section %s[%u]", KindName(kind), index));
  }
  if (s->size != count * elem_size || s->logical_count != count) {
    return Status::InvalidArgument(StrFormat(
        "v3 section %s[%u] size does not match metadata", KindName(kind),
        index));
  }
  return s;
}

template <typename T>
std::span<const T> SectionSpan(const uint8_t* base, const V3Section& s) {
  return {reinterpret_cast<const T*>(base + s.offset),
          static_cast<size_t>(s.size / sizeof(T))};
}

template <typename T>
std::vector<T> SectionCopy(const uint8_t* base, const V3Section& s) {
  std::vector<T> v(static_cast<size_t>(s.size / sizeof(T)));
  if (s.size > 0) std::memcpy(v.data(), base + s.offset, s.size);
  return v;
}

/// Builds a HeteroGraph from a validated v3 image. With a keepalive the
/// relations and features view `base` directly (the mmap path); without
/// one everything is deep-copied (the in-memory upload path, where `base`
/// is a transient buffer with no alignment guarantee).
Result<HeteroGraph> BuildGraph(const uint8_t* base, const ParsedTable& t,
                               std::shared_ptr<const void> keepalive) {
  const V3Section* meta_sec = t.Find(kMeta, 0);
  if (meta_sec == nullptr) {
    return Status::InvalidArgument("v3 container missing meta section");
  }
  FREEHGC_ASSIGN_OR_RETURN(
      V3Meta meta,
      ParseMeta(std::string_view(
          reinterpret_cast<const char*>(base + meta_sec->offset),
          meta_sec->size)));

  HeteroGraph g;
  for (const auto& tm : meta.types) {
    auto added = g.AddNodeType(tm.name, tm.count);
    if (!added.ok()) return added.status();
  }
  for (uint32_t i = 0; i < meta.relations.size(); ++i) {
    const RelationSummary& rm = meta.relations[i];
    const auto rows1 = static_cast<uint64_t>(rm.rows) + 1;
    const auto nnz = static_cast<uint64_t>(rm.nnz);
    FREEHGC_ASSIGN_OR_RETURN(
        const V3Section* ip,
        RequireArray(t, kIndptr, i, rows1, sizeof(int64_t)));
    FREEHGC_ASSIGN_OR_RETURN(
        const V3Section* ix,
        RequireArray(t, kIndices, i, nnz, sizeof(int32_t)));
    FREEHGC_ASSIGN_OR_RETURN(
        const V3Section* va, RequireArray(t, kValues, i, nnz, sizeof(float)));
    Result<CsrMatrix> adj =
        keepalive != nullptr
            ? CsrMatrix::FromView(rm.rows, rm.cols,
                                  SectionSpan<int64_t>(base, *ip),
                                  SectionSpan<int32_t>(base, *ix),
                                  SectionSpan<float>(base, *va), keepalive)
            : CsrMatrix::FromParts(rm.rows, rm.cols,
                                   SectionCopy<int64_t>(base, *ip),
                                   SectionCopy<int32_t>(base, *ix),
                                   SectionCopy<float>(base, *va));
    if (!adj.ok()) return adj.status();
    auto added = g.AddRelation(rm.name, rm.src_type, rm.dst_type,
                               std::move(*adj));
    if (!added.ok()) return added.status();
  }
  for (size_t ti = 0; ti < meta.types.size(); ++ti) {
    const auto& tm = meta.types[ti];
    if (!tm.has_features) continue;
    if (tm.feat_rows != tm.count || tm.feat_cols < 0) {
      return Status::InvalidArgument("v3 feature shape mismatch for " +
                                     tm.name);
    }
    const uint64_t count = static_cast<uint64_t>(tm.feat_rows) *
                           static_cast<uint64_t>(tm.feat_cols);
    FREEHGC_ASSIGN_OR_RETURN(
        const V3Section* fs,
        RequireArray(t, kFeatures, static_cast<uint32_t>(ti), count,
                     sizeof(float)));
    Matrix m;
    if (keepalive != nullptr) {
      m = Matrix::FromView(tm.feat_rows, tm.feat_cols,
                           SectionSpan<float>(base, *fs), keepalive);
    } else {
      m = Matrix(tm.feat_rows, tm.feat_cols);
      if (fs->size > 0) std::memcpy(m.data(), base + fs->offset, fs->size);
    }
    FREEHGC_RETURN_IF_ERROR(g.SetFeatures(static_cast<TypeId>(ti),
                                          std::move(m)));
  }
  if (meta.target >= 0) {
    FREEHGC_ASSIGN_OR_RETURN(
        const V3Section* ls,
        RequireArray(t, kLabels, 0, meta.label_count, sizeof(int32_t)));
    FREEHGC_ASSIGN_OR_RETURN(
        const V3Section* tr,
        RequireArray(t, kTrain, 0, meta.train_count, sizeof(int32_t)));
    FREEHGC_ASSIGN_OR_RETURN(
        const V3Section* va,
        RequireArray(t, kVal, 0, meta.val_count, sizeof(int32_t)));
    FREEHGC_ASSIGN_OR_RETURN(
        const V3Section* te,
        RequireArray(t, kTest, 0, meta.test_count, sizeof(int32_t)));
    // Labels and splits are small; always owned, even when mapped.
    FREEHGC_RETURN_IF_ERROR(g.SetTarget(
        meta.target, SectionCopy<int32_t>(base, *ls), meta.num_classes));
    FREEHGC_RETURN_IF_ERROR(g.SetSplit(SectionCopy<int32_t>(base, *tr),
                                       SectionCopy<int32_t>(base, *va),
                                       SectionCopy<int32_t>(base, *te)));
  }
  FREEHGC_RETURN_IF_ERROR(g.Validate());
  return g;
}

}  // namespace

Result<MappedGraph> MapHeteroGraphDetailed(const std::string& path) {
  FREEHGC_ASSIGN_OR_RETURN(std::shared_ptr<const MappedFile> mf,
                           MappedFile::OpenShared(path));
  const uint8_t* base = mf->data();
  FREEHGC_ASSIGN_OR_RETURN(ParsedTable t, ParseTable(base, mf->size()));
  // Verify every payload before handing out views: a sequential pass at
  // CRC speed, and the kernel readahead it triggers doubles as a warmup.
  mf->Advise(MappedFile::AccessPattern::kSequential);
  for (const auto& s : t.sections) {
    FREEHGC_RETURN_IF_ERROR(VerifySectionCrc(base, s));
  }
  mf->Advise(MappedFile::AccessPattern::kNormal);
  MappedGraph out;
  FREEHGC_ASSIGN_OR_RETURN(out.graph, BuildGraph(base, t, mf));
  out.fingerprint = t.header.content_fingerprint;
  out.file_bytes = t.header.file_size;
  return out;
}

Result<HeteroGraph> MapHeteroGraph(const std::string& path) {
  FREEHGC_ASSIGN_OR_RETURN(MappedGraph mg, MapHeteroGraphDetailed(path));
  return std::move(mg.graph);
}

namespace serialize_internal {

Result<HeteroGraph> ParseV3Memory(std::string_view bytes) {
  const auto* base = reinterpret_cast<const uint8_t*>(bytes.data());
  FREEHGC_ASSIGN_OR_RETURN(ParsedTable t, ParseTable(base, bytes.size()));
  for (const auto& s : t.sections) {
    FREEHGC_RETURN_IF_ERROR(VerifySectionCrc(base, s));
  }
  return BuildGraph(base, t, nullptr);
}

}  // namespace serialize_internal

// --- Inspection -----------------------------------------------------------

Result<ContainerSummary> InspectContainer(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::NotFound("cannot open: " + path);
  uint32_t magic = 0, version = 0;
  if (std::fread(&magic, 1, sizeof(magic), f.get()) != sizeof(magic) ||
      magic != kMagic) {
    return Status::InvalidArgument("not a FreeHGC graph file: " + path);
  }
  if (std::fread(&version, 1, sizeof(version), f.get()) != sizeof(version)) {
    return Status::InvalidArgument("truncated graph container header");
  }
  if (version == serialize_internal::kVersionLegacy ||
      version == serialize_internal::kVersionV2) {
    return serialize_internal::InspectLegacyContainer(path, version, f.get());
  }
  if (version != kVersionV3) {
    return Status::InvalidArgument("unsupported graph file version");
  }
  f.reset();
  FREEHGC_ASSIGN_OR_RETURN(std::shared_ptr<const MappedFile> mf,
                           MappedFile::OpenShared(path));
  const uint8_t* base = mf->data();
  FREEHGC_ASSIGN_OR_RETURN(ParsedTable t, ParseTable(base, mf->size()));
  mf->Advise(MappedFile::AccessPattern::kSequential);

  ContainerSummary out;
  out.version = kVersionV3;
  out.file_bytes = t.header.file_size;
  out.fingerprint = t.header.content_fingerprint;
  out.crc_ok = true;
  for (const auto& s : t.sections) {
    SectionSummary ss;
    ss.kind = KindName(s.kind);
    ss.index = s.index;
    ss.offset = s.offset;
    ss.size = s.size;
    ss.logical_count = s.logical_count;
    ss.stored_crc = s.crc;
    ss.crc_ok = Crc32(base + s.offset, s.size) == s.crc;
    out.crc_ok = out.crc_ok && ss.crc_ok;
    out.sections.push_back(std::move(ss));
  }
  const V3Section* meta_sec = t.Find(kMeta, 0);
  if (meta_sec != nullptr) {
    auto meta = ParseMeta(std::string_view(
        reinterpret_cast<const char*>(base + meta_sec->offset),
        meta_sec->size));
    if (meta.ok()) {
      for (const auto& tm : meta->types) {
        out.types.emplace_back(tm.name, tm.count);
      }
      out.relations = std::move(meta->relations);
    }
  }
  return out;
}

}  // namespace freehgc
