// Format version 3: the page-aligned, memory-mappable graph container.
//
// Layout (all integers little-endian, the only byte order we target):
//
//   [0, 4096)              fixed header (section_io::FileHeader + padding)
//   [4096, table_offset)   sections, each starting on a 4096-byte boundary
//   [table_offset, EOF)    section table: section_count SectionEntry records
//
// The per-section machinery (page alignment, CRC-32, trailing table,
// tmp+fsync+rename publish) lives in graph/section_io.{h,cc}, shared with
// the artifact spill files; this file layers the graph-specific pieces on
// top: the META section describing types/relations/labels, the mapping of
// sections onto HeteroGraph storage, and zero-copy view construction.
// Every array payload (CSR indptr/indices/values, feature matrices,
// labels, splits) is its own section, page-aligned and CRC-32 protected,
// which is what lets MapHeteroGraph hand out zero-copy views: a mapped
// int64 span is valid because section offsets are multiples of 4096 and
// mmap returns page-aligned bases.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "common/mapped_file.h"
#include "common/string_util.h"
#include "graph/section_io.h"
#include "graph/serialize.h"
#include "graph/serialize_internal.h"

namespace freehgc {

namespace {

using section_io::SectionEntry;
using section_io::SectionView;
using section_io::SectionWriter;
using serialize_internal::ByteReader;
using serialize_internal::FilePtr;
using serialize_internal::kMagic;
using serialize_internal::kVersionV3;
using serialize_internal::ReadPod;
using serialize_internal::ReadString;
using serialize_internal::WritePod;
using serialize_internal::WriteString;

using section_io::kFeatures;
using section_io::kIndices;
using section_io::kIndptr;
using section_io::kLabels;
using section_io::kMeta;
using section_io::kTest;
using section_io::kTrain;
using section_io::kVal;
using section_io::kValues;

/// Staged metadata describing the sections; serialized into the META
/// section on Finish and parsed back on map.
struct V3Meta {
  struct TypeMeta {
    std::string name;
    int32_t count = 0;
    bool has_features = false;
    int64_t feat_rows = 0;
    int64_t feat_cols = 0;
  };
  std::vector<TypeMeta> types;
  std::vector<RelationSummary> relations;
  int32_t target = -1;
  int32_t num_classes = 0;
  uint64_t label_count = 0;
  uint64_t train_count = 0;
  uint64_t val_count = 0;
  uint64_t test_count = 0;
};

std::string SerializeMeta(const V3Meta& m) {
  std::string out;
  WritePod(out, static_cast<uint32_t>(m.types.size()));
  for (const auto& t : m.types) {
    WriteString(out, t.name);
    WritePod(out, t.count);
    WritePod(out, static_cast<uint8_t>(t.has_features ? 1 : 0));
    WritePod(out, t.feat_rows);
    WritePod(out, t.feat_cols);
  }
  WritePod(out, static_cast<uint32_t>(m.relations.size()));
  for (const auto& r : m.relations) {
    WriteString(out, r.name);
    WritePod(out, r.src_type);
    WritePod(out, r.dst_type);
    WritePod(out, r.rows);
    WritePod(out, r.cols);
    WritePod(out, r.nnz);
  }
  WritePod(out, m.target);
  if (m.target >= 0) {
    WritePod(out, m.num_classes);
    WritePod(out, m.label_count);
    WritePod(out, m.train_count);
    WritePod(out, m.val_count);
    WritePod(out, m.test_count);
  }
  return out;
}

Result<V3Meta> ParseMeta(std::string_view bytes) {
  V3Meta m;
  ByteReader r(bytes);
  uint32_t num_types = 0;
  if (!ReadPod(r, &num_types) || num_types > 4096) {
    return Status::InvalidArgument("v3 meta: bad type count");
  }
  m.types.resize(num_types);
  for (auto& t : m.types) {
    uint8_t has = 0;
    if (!ReadString(r, &t.name) || !ReadPod(r, &t.count) ||
        !ReadPod(r, &has) || !ReadPod(r, &t.feat_rows) ||
        !ReadPod(r, &t.feat_cols) || t.count < 0) {
      return Status::InvalidArgument("v3 meta: truncated type table");
    }
    t.has_features = has != 0;
  }
  uint32_t num_rel = 0;
  if (!ReadPod(r, &num_rel) || num_rel > 65536) {
    return Status::InvalidArgument("v3 meta: bad relation count");
  }
  m.relations.resize(num_rel);
  for (auto& rel : m.relations) {
    if (!ReadString(r, &rel.name) || !ReadPod(r, &rel.src_type) ||
        !ReadPod(r, &rel.dst_type) || !ReadPod(r, &rel.rows) ||
        !ReadPod(r, &rel.cols) || !ReadPod(r, &rel.nnz) || rel.nnz < 0) {
      return Status::InvalidArgument("v3 meta: truncated relation table");
    }
  }
  if (!ReadPod(r, &m.target)) {
    return Status::InvalidArgument("v3 meta: truncated target");
  }
  if (m.target >= 0) {
    if (!ReadPod(r, &m.num_classes) || !ReadPod(r, &m.label_count) ||
        !ReadPod(r, &m.train_count) || !ReadPod(r, &m.val_count) ||
        !ReadPod(r, &m.test_count)) {
      return Status::InvalidArgument("v3 meta: truncated label block");
    }
  }
  return m;
}

}  // namespace

// --- Writer ---------------------------------------------------------------

struct HeteroGraphV3Writer::Impl {
  SectionWriter writer;
  V3Meta meta;
  int64_t total_edges = 0;
  bool have_fingerprint = false;
  uint64_t fingerprint = 0;
  bool have_split = false;

  // Open feature block.
  bool feat_open = false;
  TypeId feat_type = -1;
  int64_t feat_rows_left = 0;
  int64_t feat_cols = 0;

  explicit Impl(SectionWriter w) : writer(std::move(w)) {}

  Status CheckOpen() const { return writer.CheckOpen(); }
};

Result<HeteroGraphV3Writer> HeteroGraphV3Writer::Create(
    const std::string& path) {
  FREEHGC_ASSIGN_OR_RETURN(
      SectionWriter sw,
      SectionWriter::Create(path, section_io::GraphContainerFormat()));
  HeteroGraphV3Writer w;
  w.impl_ = new Impl(std::move(sw));
  return w;
}

HeteroGraphV3Writer::HeteroGraphV3Writer(HeteroGraphV3Writer&& other) noexcept
    : impl_(other.impl_) {
  other.impl_ = nullptr;
}

HeteroGraphV3Writer& HeteroGraphV3Writer::operator=(
    HeteroGraphV3Writer&& other) noexcept {
  if (this != &other) {
    Abandon();
    impl_ = other.impl_;
    other.impl_ = nullptr;
  }
  return *this;
}

HeteroGraphV3Writer::~HeteroGraphV3Writer() { Abandon(); }

void HeteroGraphV3Writer::Abandon() {
  if (impl_ == nullptr) return;
  impl_->writer.Abandon();
  delete impl_;
  impl_ = nullptr;
}

Status HeteroGraphV3Writer::AddNodeType(const std::string& name,
                                        int32_t count) {
  FREEHGC_RETURN_IF_ERROR(impl_->CheckOpen());
  if (count < 0) return Status::InvalidArgument("negative node count");
  for (const auto& t : impl_->meta.types) {
    if (t.name == name) {
      return Status::InvalidArgument("duplicate node type: " + name);
    }
  }
  impl_->meta.types.push_back({name, count, false, 0, 0});
  return Status::OK();
}

Status HeteroGraphV3Writer::AddRelation(const std::string& name, TypeId src,
                                        TypeId dst, const CsrMatrix& adj) {
  FREEHGC_RETURN_IF_ERROR(impl_->CheckOpen());
  const auto num_types = static_cast<TypeId>(impl_->meta.types.size());
  if (src < 0 || src >= num_types || dst < 0 || dst >= num_types) {
    return Status::InvalidArgument("relation endpoint type out of range");
  }
  if (adj.rows() != impl_->meta.types[static_cast<size_t>(src)].count ||
      adj.cols() != impl_->meta.types[static_cast<size_t>(dst)].count) {
    return Status::InvalidArgument(
        "relation adjacency shape does not match type counts: " + name);
  }
  const auto index = static_cast<uint32_t>(impl_->meta.relations.size());
  FREEHGC_RETURN_IF_ERROR(
      impl_->writer.WriteArraySection(kIndptr, index, adj.indptr()));
  FREEHGC_RETURN_IF_ERROR(
      impl_->writer.WriteArraySection(kIndices, index, adj.indices()));
  FREEHGC_RETURN_IF_ERROR(
      impl_->writer.WriteArraySection(kValues, index, adj.values()));
  impl_->meta.relations.push_back(
      {name, src, dst, adj.rows(), adj.cols(), adj.nnz()});
  impl_->total_edges += adj.nnz();
  return Status::OK();
}

Status HeteroGraphV3Writer::BeginFeatures(TypeId type, int64_t rows,
                                          int64_t cols) {
  FREEHGC_RETURN_IF_ERROR(impl_->CheckOpen());
  if (impl_->feat_open) {
    return Status::FailedPrecondition("feature block already open");
  }
  const auto num_types = static_cast<TypeId>(impl_->meta.types.size());
  if (type < 0 || type >= num_types) {
    return Status::InvalidArgument("feature type out of range");
  }
  auto& tm = impl_->meta.types[static_cast<size_t>(type)];
  if (tm.has_features) {
    return Status::InvalidArgument("features already written for " + tm.name);
  }
  if (rows != tm.count || cols < 0) {
    return Status::InvalidArgument("feature shape mismatch for " + tm.name);
  }
  FREEHGC_RETURN_IF_ERROR(
      impl_->writer.BeginSection(kFeatures, static_cast<uint32_t>(type)));
  impl_->feat_open = true;
  impl_->feat_type = type;
  impl_->feat_rows_left = rows;
  impl_->feat_cols = cols;
  return Status::OK();
}

Status HeteroGraphV3Writer::AppendFeatureRows(const float* data,
                                              int64_t num_rows) {
  FREEHGC_RETURN_IF_ERROR(impl_->CheckOpen());
  if (!impl_->feat_open) {
    return Status::FailedPrecondition("no open feature block");
  }
  if (num_rows < 0 || num_rows > impl_->feat_rows_left) {
    return Status::InvalidArgument("feature rows exceed declared count");
  }
  const size_t bytes = static_cast<size_t>(num_rows) *
                       static_cast<size_t>(impl_->feat_cols) * sizeof(float);
  FREEHGC_RETURN_IF_ERROR(impl_->writer.Append(data, bytes));
  impl_->feat_rows_left -= num_rows;
  return Status::OK();
}

Status HeteroGraphV3Writer::EndFeatures() {
  FREEHGC_RETURN_IF_ERROR(impl_->CheckOpen());
  if (!impl_->feat_open) {
    return Status::FailedPrecondition("no open feature block");
  }
  if (impl_->feat_rows_left != 0) {
    return Status::InvalidArgument("feature block closed short of rows");
  }
  auto& tm = impl_->meta.types[static_cast<size_t>(impl_->feat_type)];
  tm.has_features = true;
  tm.feat_rows = tm.count;
  tm.feat_cols = impl_->feat_cols;
  FREEHGC_RETURN_IF_ERROR(
      impl_->writer.EndSection(static_cast<uint64_t>(tm.feat_rows) *
                               static_cast<uint64_t>(tm.feat_cols)));
  impl_->feat_open = false;
  impl_->feat_type = -1;
  return Status::OK();
}

Status HeteroGraphV3Writer::AddFeatures(TypeId type, const Matrix& features) {
  FREEHGC_RETURN_IF_ERROR(BeginFeatures(type, features.rows(),
                                        features.cols()));
  FREEHGC_RETURN_IF_ERROR(AppendFeatureRows(features.data(),
                                            features.rows()));
  return EndFeatures();
}

Status HeteroGraphV3Writer::SetTarget(TypeId type,
                                      std::span<const int32_t> labels,
                                      int32_t num_classes) {
  FREEHGC_RETURN_IF_ERROR(impl_->CheckOpen());
  const auto num_types = static_cast<TypeId>(impl_->meta.types.size());
  if (type < 0 || type >= num_types) {
    return Status::InvalidArgument("target type out of range");
  }
  if (impl_->meta.target >= 0) {
    return Status::FailedPrecondition("target already set");
  }
  const auto count =
      static_cast<size_t>(impl_->meta.types[static_cast<size_t>(type)].count);
  if (labels.size() != count) {
    return Status::InvalidArgument("label count does not match target type");
  }
  FREEHGC_RETURN_IF_ERROR(impl_->writer.WriteArraySection(kLabels, 0, labels));
  impl_->meta.target = type;
  impl_->meta.num_classes = num_classes;
  impl_->meta.label_count = labels.size();
  return Status::OK();
}

Status HeteroGraphV3Writer::SetSplit(std::span<const int32_t> train,
                                     std::span<const int32_t> val,
                                     std::span<const int32_t> test) {
  FREEHGC_RETURN_IF_ERROR(impl_->CheckOpen());
  if (impl_->meta.target < 0) {
    return Status::FailedPrecondition("SetSplit requires SetTarget first");
  }
  if (impl_->have_split) {
    return Status::FailedPrecondition("split already set");
  }
  FREEHGC_RETURN_IF_ERROR(impl_->writer.WriteArraySection(kTrain, 0, train));
  FREEHGC_RETURN_IF_ERROR(impl_->writer.WriteArraySection(kVal, 0, val));
  FREEHGC_RETURN_IF_ERROR(impl_->writer.WriteArraySection(kTest, 0, test));
  impl_->meta.train_count = train.size();
  impl_->meta.val_count = val.size();
  impl_->meta.test_count = test.size();
  impl_->have_split = true;
  return Status::OK();
}

Status HeteroGraphV3Writer::SetContentFingerprint(uint64_t fingerprint) {
  FREEHGC_RETURN_IF_ERROR(impl_->CheckOpen());
  impl_->fingerprint = fingerprint;
  impl_->have_fingerprint = true;
  return Status::OK();
}

Result<V3WriteSummary> HeteroGraphV3Writer::Finish() {
  FREEHGC_RETURN_IF_ERROR(impl_->CheckOpen());
  if (impl_->feat_open) {
    return Status::FailedPrecondition("unclosed feature block");
  }
  if (!impl_->have_fingerprint) {
    return Status::FailedPrecondition(
        "SetContentFingerprint required before Finish");
  }
  // Meta section, then section_io writes the table + header.
  const std::string meta = SerializeMeta(impl_->meta);
  FREEHGC_RETURN_IF_ERROR(impl_->writer.BeginSection(kMeta, 0));
  FREEHGC_RETURN_IF_ERROR(impl_->writer.Append(meta.data(), meta.size()));
  FREEHGC_RETURN_IF_ERROR(impl_->writer.EndSection(meta.size()));
  FREEHGC_RETURN_IF_ERROR(
      impl_->writer.SetContentFingerprint(impl_->fingerprint));
  FREEHGC_ASSIGN_OR_RETURN(const uint64_t file_bytes, impl_->writer.Finish());

  V3WriteSummary summary;
  summary.fingerprint = impl_->fingerprint;
  summary.file_bytes = file_bytes;
  for (const auto& t : impl_->meta.types) summary.nodes += t.count;
  summary.edges = impl_->total_edges;
  return summary;
}

Result<V3WriteSummary> SaveHeteroGraphV3(const HeteroGraph& g,
                                         const std::string& path) {
  FREEHGC_RETURN_IF_ERROR(g.Validate());
  FREEHGC_ASSIGN_OR_RETURN(HeteroGraphV3Writer w,
                           HeteroGraphV3Writer::Create(path));
  for (TypeId t = 0; t < g.NumNodeTypes(); ++t) {
    FREEHGC_RETURN_IF_ERROR(w.AddNodeType(g.TypeName(t), g.NodeCount(t)));
  }
  for (RelationId r = 0; r < g.NumRelations(); ++r) {
    const Relation& rel = g.relation(r);
    FREEHGC_RETURN_IF_ERROR(
        w.AddRelation(rel.name, rel.src_type, rel.dst_type, rel.adj));
  }
  for (TypeId t = 0; t < g.NumNodeTypes(); ++t) {
    if (g.HasFeatures(t)) {
      FREEHGC_RETURN_IF_ERROR(w.AddFeatures(t, g.Features(t)));
    }
  }
  if (g.target_type() >= 0) {
    FREEHGC_RETURN_IF_ERROR(
        w.SetTarget(g.target_type(), g.labels(), g.num_classes()));
    FREEHGC_RETURN_IF_ERROR(
        w.SetSplit(g.train_index(), g.val_index(), g.test_index()));
  }
  FREEHGC_RETURN_IF_ERROR(w.SetContentFingerprint(g.ContentFingerprint()));
  return w.Finish();
}

// --- Reader ---------------------------------------------------------------

namespace {

/// Builds a HeteroGraph from a validated section view. With a mapping the
/// relations and features view the file directly (the mmap path); without
/// one everything is deep-copied (the in-memory upload path, where the
/// buffer is transient with no alignment guarantee).
Result<HeteroGraph> BuildGraph(const SectionView& v) {
  const uint8_t* base = v.base();
  const std::shared_ptr<const MappedFile>& keepalive = v.mapping();
  const SectionEntry* meta_sec = v.Find(kMeta, 0);
  if (meta_sec == nullptr) {
    return Status::InvalidArgument("v3 container missing meta section");
  }
  FREEHGC_ASSIGN_OR_RETURN(
      V3Meta meta,
      ParseMeta(std::string_view(
          reinterpret_cast<const char*>(base + meta_sec->offset),
          meta_sec->size)));

  HeteroGraph g;
  for (const auto& tm : meta.types) {
    auto added = g.AddNodeType(tm.name, tm.count);
    if (!added.ok()) return added.status();
  }
  for (uint32_t i = 0; i < meta.relations.size(); ++i) {
    const RelationSummary& rm = meta.relations[i];
    const auto rows1 = static_cast<uint64_t>(rm.rows) + 1;
    const auto nnz = static_cast<uint64_t>(rm.nnz);
    FREEHGC_ASSIGN_OR_RETURN(
        const SectionEntry* ip,
        v.RequireArray(kIndptr, i, rows1, sizeof(int64_t)));
    FREEHGC_ASSIGN_OR_RETURN(
        const SectionEntry* ix,
        v.RequireArray(kIndices, i, nnz, sizeof(int32_t)));
    FREEHGC_ASSIGN_OR_RETURN(
        const SectionEntry* va,
        v.RequireArray(kValues, i, nnz, sizeof(float)));
    Result<CsrMatrix> adj =
        keepalive != nullptr
            ? CsrMatrix::FromView(rm.rows, rm.cols, v.Span<int64_t>(*ip),
                                  v.Span<int32_t>(*ix), v.Span<float>(*va),
                                  keepalive)
            : CsrMatrix::FromParts(rm.rows, rm.cols, v.Copy<int64_t>(*ip),
                                   v.Copy<int32_t>(*ix), v.Copy<float>(*va));
    if (!adj.ok()) return adj.status();
    auto added = g.AddRelation(rm.name, rm.src_type, rm.dst_type,
                               std::move(*adj));
    if (!added.ok()) return added.status();
  }
  for (size_t ti = 0; ti < meta.types.size(); ++ti) {
    const auto& tm = meta.types[ti];
    if (!tm.has_features) continue;
    if (tm.feat_rows != tm.count || tm.feat_cols < 0) {
      return Status::InvalidArgument("v3 feature shape mismatch for " +
                                     tm.name);
    }
    const uint64_t count = static_cast<uint64_t>(tm.feat_rows) *
                           static_cast<uint64_t>(tm.feat_cols);
    FREEHGC_ASSIGN_OR_RETURN(
        const SectionEntry* fs,
        v.RequireArray(kFeatures, static_cast<uint32_t>(ti), count,
                       sizeof(float)));
    Matrix m;
    if (keepalive != nullptr) {
      m = Matrix::FromView(tm.feat_rows, tm.feat_cols, v.Span<float>(*fs),
                           keepalive);
    } else {
      m = Matrix(tm.feat_rows, tm.feat_cols);
      if (fs->size > 0) std::memcpy(m.data(), base + fs->offset, fs->size);
    }
    FREEHGC_RETURN_IF_ERROR(g.SetFeatures(static_cast<TypeId>(ti),
                                          std::move(m)));
  }
  if (meta.target >= 0) {
    FREEHGC_ASSIGN_OR_RETURN(
        const SectionEntry* ls,
        v.RequireArray(kLabels, 0, meta.label_count, sizeof(int32_t)));
    FREEHGC_ASSIGN_OR_RETURN(
        const SectionEntry* tr,
        v.RequireArray(kTrain, 0, meta.train_count, sizeof(int32_t)));
    FREEHGC_ASSIGN_OR_RETURN(
        const SectionEntry* va,
        v.RequireArray(kVal, 0, meta.val_count, sizeof(int32_t)));
    FREEHGC_ASSIGN_OR_RETURN(
        const SectionEntry* te,
        v.RequireArray(kTest, 0, meta.test_count, sizeof(int32_t)));
    // Labels and splits are small; always owned, even when mapped.
    FREEHGC_RETURN_IF_ERROR(g.SetTarget(meta.target, v.Copy<int32_t>(*ls),
                                        meta.num_classes));
    FREEHGC_RETURN_IF_ERROR(g.SetSplit(v.Copy<int32_t>(*tr),
                                       v.Copy<int32_t>(*va),
                                       v.Copy<int32_t>(*te)));
  }
  FREEHGC_RETURN_IF_ERROR(g.Validate());
  return g;
}

}  // namespace

Result<MappedGraph> MapHeteroGraphDetailed(const std::string& path) {
  FREEHGC_ASSIGN_OR_RETURN(
      SectionView v,
      SectionView::Map(path, section_io::GraphContainerFormat()));
  // Verify every payload before handing out views: a sequential pass at
  // CRC speed, and the kernel readahead it triggers doubles as a warmup.
  FREEHGC_RETURN_IF_ERROR(v.VerifyAllCrcs());
  MappedGraph out;
  FREEHGC_ASSIGN_OR_RETURN(out.graph, BuildGraph(v));
  out.fingerprint = v.fingerprint();
  out.file_bytes = v.file_bytes();
  out.mapping = v.mapping();
  return out;
}

Result<HeteroGraph> MapHeteroGraph(const std::string& path) {
  FREEHGC_ASSIGN_OR_RETURN(MappedGraph mg, MapHeteroGraphDetailed(path));
  return std::move(mg.graph);
}

namespace serialize_internal {

Result<HeteroGraph> ParseV3Memory(std::string_view bytes) {
  const auto* base = reinterpret_cast<const uint8_t*>(bytes.data());
  FREEHGC_ASSIGN_OR_RETURN(
      SectionView v,
      SectionView::Parse(base, bytes.size(),
                         section_io::GraphContainerFormat()));
  FREEHGC_RETURN_IF_ERROR(v.VerifyAllCrcs());
  return BuildGraph(v);
}

}  // namespace serialize_internal

// --- Inspection -----------------------------------------------------------

namespace {

/// Shared section-table walk for v3 containers and spill files.
void SummarizeSections(const SectionView& v, ContainerSummary* out) {
  out->file_bytes = v.file_bytes();
  out->fingerprint = v.fingerprint();
  out->crc_ok = true;
  for (const auto& s : v.sections()) {
    SectionSummary ss;
    ss.kind = section_io::KindName(s.kind);
    ss.index = s.index;
    ss.offset = s.offset;
    ss.size = s.size;
    ss.logical_count = s.logical_count;
    ss.stored_crc = s.crc;
    ss.crc_ok = v.VerifyCrc(s).ok();
    out->crc_ok = out->crc_ok && ss.crc_ok;
    out->sections.push_back(std::move(ss));
  }
}

}  // namespace

Result<ContainerSummary> InspectSpillFile(const std::string& path) {
  FREEHGC_ASSIGN_OR_RETURN(
      SectionView v, SectionView::Map(path, section_io::SpillFormat()));
  if (v.mapping() != nullptr) {
    v.mapping()->Advise(MappedFile::AccessPattern::kSequential);
  }
  ContainerSummary out;
  out.version = section_io::kSpillVersion;
  out.spill = true;
  SummarizeSections(v, &out);
  return out;
}

Result<ContainerSummary> InspectContainer(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::NotFound("cannot open: " + path);
  uint32_t magic = 0, version = 0;
  if (std::fread(&magic, 1, sizeof(magic), f.get()) != sizeof(magic)) {
    return Status::InvalidArgument("not a FreeHGC graph file: " + path);
  }
  if (magic == section_io::kSpillMagic) {
    f.reset();
    return InspectSpillFile(path);
  }
  if (magic != kMagic) {
    return Status::InvalidArgument("not a FreeHGC graph file: " + path);
  }
  if (std::fread(&version, 1, sizeof(version), f.get()) != sizeof(version)) {
    return Status::InvalidArgument("truncated graph container header");
  }
  if (version == serialize_internal::kVersionLegacy ||
      version == serialize_internal::kVersionV2) {
    return serialize_internal::InspectLegacyContainer(path, version, f.get());
  }
  if (version != kVersionV3) {
    return Status::InvalidArgument("unsupported graph file version");
  }
  f.reset();
  FREEHGC_ASSIGN_OR_RETURN(
      SectionView v,
      SectionView::Map(path, section_io::GraphContainerFormat()));
  v.mapping()->Advise(MappedFile::AccessPattern::kSequential);

  ContainerSummary out;
  out.version = kVersionV3;
  SummarizeSections(v, &out);
  const SectionEntry* meta_sec = v.Find(kMeta, 0);
  if (meta_sec != nullptr) {
    auto meta = ParseMeta(std::string_view(
        reinterpret_cast<const char*>(v.base() + meta_sec->offset),
        meta_sec->size));
    if (meta.ok()) {
      for (const auto& tm : meta->types) {
        out.types.emplace_back(tm.name, tm.count);
      }
      out.relations = std::move(meta->relations);
    }
  }
  return out;
}

}  // namespace freehgc
