#include <gtest/gtest.h>

#include <set>

#include "baselines/coarsening.h"
#include "baselines/coreset.h"
#include "baselines/gradient_matching.h"
#include "datasets/generator.h"

namespace freehgc::baselines {
namespace {

hgnn::EvalContext MakeContext(const HeteroGraph& g) {
  hgnn::PropagateOptions popts;
  popts.max_hops = 2;
  popts.max_paths = 8;
  return hgnn::BuildEvalContext(g, popts);
}

class CoresetKindTest : public ::testing::TestWithParam<CoresetKind> {};

TEST_P(CoresetKindTest, RespectsBudgetsAndValidates) {
  const HeteroGraph g = datasets::MakeToy(1);
  const hgnn::EvalContext ctx = MakeContext(g);
  auto res = CoresetCondense(ctx, GetParam(), /*ratio=*/0.2, /*seed=*/3);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->graph.Validate().ok());
  for (TypeId t = 0; t < g.NumNodeTypes(); ++t) {
    EXPECT_LE(res->graph.NodeCount(t),
              static_cast<int32_t>(0.2 * g.NodeCount(t)) +
                  g.num_classes() + 1);
    EXPECT_GT(res->graph.NodeCount(t), 0);
  }
  EXPECT_GE(res->seconds, 0.0);
}

TEST_P(CoresetKindTest, Deterministic) {
  const HeteroGraph g = datasets::MakeToy(2);
  const hgnn::EvalContext ctx = MakeContext(g);
  auto a = CoresetCondense(ctx, GetParam(), 0.2, 7);
  auto b = CoresetCondense(ctx, GetParam(), 0.2, 7);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->graph.TotalNodes(), b->graph.TotalNodes());
  EXPECT_EQ(a->graph.TotalEdges(), b->graph.TotalEdges());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, CoresetKindTest,
                         ::testing::Values(CoresetKind::kRandom,
                                           CoresetKind::kHerding,
                                           CoresetKind::kKCenter),
                         [](const auto& info) {
                           switch (info.param) {
                             case CoresetKind::kRandom: return "Random";
                             case CoresetKind::kHerding: return "Herding";
                             case CoresetKind::kKCenter: return "KCenter";
                           }
                           return "?";
                         });

TEST(CoresetTest, KindNames) {
  EXPECT_STREQ(CoresetKindName(CoresetKind::kHerding), "Herding-HG");
  EXPECT_STREQ(CoresetKindName(CoresetKind::kRandom), "Random-HG");
}

TEST(CoarseningTest, ProducesValidCondensedGraph) {
  const HeteroGraph g = datasets::MakeToy(11);
  auto res = CoarseningCondense(g, 0.2, /*smoothing_rounds=*/3, 5);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->graph.Validate().ok());
  // All classes represented among kept target labels.
  std::set<int32_t> classes(res->graph.labels().begin(),
                            res->graph.labels().end());
  EXPECT_EQ(static_cast<int32_t>(classes.size()), g.num_classes());
  // Other types are coarsened near the budget.
  const TypeId l = g.TypeByName("l").value();
  EXPECT_LE(res->graph.NodeCount(l),
            static_cast<int32_t>(0.2 * g.NodeCount(l)) + 1);
}

TEST(CoarseningTest, SupernodeFeaturesAreMixtures) {
  const HeteroGraph g = datasets::MakeToy(13);
  auto res = CoarseningCondense(g, 0.3, 2, 5);
  ASSERT_TRUE(res.ok());
  const TypeId f = g.TypeByName("f").value();
  const Matrix& orig = g.Features(f);
  float lo = orig.data()[0], hi = orig.data()[0];
  for (int64_t i = 0; i < orig.size(); ++i) {
    lo = std::min(lo, orig.data()[i]);
    hi = std::max(hi, orig.data()[i]);
  }
  const Matrix& coarse = res->graph.Features(f);
  for (int64_t i = 0; i < coarse.size(); ++i) {
    EXPECT_GE(coarse.data()[i], lo - 1e-4f);
    EXPECT_LE(coarse.data()[i], hi + 1e-4f);
  }
}

TEST(GradientMatchingTest, OutputShapesMatchContext) {
  const HeteroGraph g = datasets::MakeToy(21);
  const hgnn::EvalContext ctx = MakeContext(g);
  GradientMatchingOptions opts;
  opts.ratio = 0.2;
  opts.outer_iters = 3;
  opts.inner_iters = 2;
  opts.relay_inits = 2;
  auto res = GradientMatchingCondense(ctx, opts);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->blocks.size(), ctx.full_features.blocks.size());
  for (size_t b = 0; b < res->blocks.size(); ++b) {
    EXPECT_EQ(res->blocks[b].cols(), ctx.full_features.blocks[b].cols());
    EXPECT_EQ(res->blocks[b].rows(),
              static_cast<int64_t>(res->labels.size()));
  }
  EXPECT_GT(res->MemoryBytes(), 0u);
  // Class-proportional synthetic labels cover every class.
  std::set<int32_t> classes(res->labels.begin(), res->labels.end());
  EXPECT_EQ(static_cast<int32_t>(classes.size()), g.num_classes());
}

TEST(GradientMatchingTest, HeteroVariantUsesClusterInitAndCostsMore) {
  const HeteroGraph g = datasets::MakeAcm(23, /*scale=*/0.3);
  const hgnn::EvalContext ctx = MakeContext(g);
  GradientMatchingOptions gcond;
  gcond.ratio = 0.05;
  gcond.outer_iters = 6;
  auto a = GradientMatchingCondense(ctx, gcond);
  GradientMatchingOptions hgcond = gcond;
  hgcond.hetero = true;
  hgcond.relay_inits = gcond.relay_inits + 2;
  hgcond.inner_iters = gcond.inner_iters + 2;
  auto b = GradientMatchingCondense(ctx, hgcond);
  ASSERT_TRUE(a.ok() && b.ok());
  // HGCond's clustering + OPS + heavier loops must cost more wall clock
  // (the workload is sized so the gap is far above timer noise).
  EXPECT_GT(b->seconds, a->seconds);
}

TEST(GradientMatchingTest, MemoryGateTriggersResourceExhausted) {
  const HeteroGraph g = datasets::MakeToy(25);
  const hgnn::EvalContext ctx = MakeContext(g);
  GradientMatchingOptions opts;
  opts.ratio = 0.2;
  opts.memory_budget_bytes = 1;  // everything exceeds 1 byte
  opts.memory_scale = 1000.0;
  auto res = GradientMatchingCondense(ctx, opts);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
}

TEST(GradientMatchingTest, MemoryGateAllowsSmallRuns) {
  const HeteroGraph g = datasets::MakeToy(27);
  const hgnn::EvalContext ctx = MakeContext(g);
  GradientMatchingOptions opts;
  opts.ratio = 0.1;
  opts.outer_iters = 2;
  opts.memory_budget_bytes = 24ULL << 30;  // 24GB
  opts.memory_scale = 1.0;
  EXPECT_TRUE(GradientMatchingCondense(ctx, opts).ok());
}

TEST(GradientMatchingTest, SyntheticFeaturesCarryClassSignal) {
  // After matching, a fresh linear probe trained on the synthetic data
  // should beat chance on the real test split — i.e. the synthetic
  // features are not noise.
  const HeteroGraph g = datasets::MakeAcm(29, /*scale=*/0.08);
  const hgnn::EvalContext ctx = MakeContext(g);
  GradientMatchingOptions opts;
  opts.ratio = 0.1;
  auto res = GradientMatchingCondense(ctx, opts);
  ASSERT_TRUE(res.ok());
  hgnn::HgnnConfig cfg;
  cfg.kind = hgnn::HgnnKind::kHeteroSGC;
  cfg.hidden = 16;
  cfg.epochs = 60;
  const hgnn::EvalMetrics m =
      hgnn::TrainOnBlocks(ctx, res->blocks, res->labels, cfg);
  EXPECT_GT(m.test_accuracy, 1.3f / static_cast<float>(g.num_classes()));
}

}  // namespace
}  // namespace freehgc::baselines
