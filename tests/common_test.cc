#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <set>
#include <span>
#include <vector>

#include "common/crc32.h"
#include "common/mapped_file.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/storage.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table.h"
#include "common/timer.h"

namespace freehgc {
namespace {

// --- Status ---------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad ratio");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad ratio");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad ratio");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::OutOfRange("").code(),      Status::FailedPrecondition("").code(),
      Status::Internal("").code(),        Status::Unimplemented("").code(),
      Status::ResourceExhausted("").code()};
  EXPECT_EQ(codes.size(), 7u);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status {
    FREEHGC_RETURN_IF_ERROR(Status::Internal("inner"));
    return Status::OK();
  };
  auto passes = []() -> Status {
    FREEHGC_RETURN_IF_ERROR(Status::OK());
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kInternal);
  EXPECT_TRUE(passes().ok());
}

// --- Result ----------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r(41);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 41);
  EXPECT_EQ(*r, 41);
  EXPECT_EQ(r.value_or(0), 41);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-7), -7);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r{Status::OK()};
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::OutOfRange("nope");
    return 10;
  };
  auto outer = [&](bool fail) -> Result<int> {
    FREEHGC_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(outer(false).value(), 11);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOnlyFriendly) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// --- Rng -------------------------------------------------------------------

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(123), b(123), c(124);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.NextU64();
    EXPECT_EQ(va, b.NextU64());
    if (va != c.NextU64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, WeightedFavorsHeavyIndex) {
  Rng rng(13);
  std::vector<double> w = {0.05, 0.9, 0.05};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 3000; ++i) ++counts[rng.NextWeighted(w)];
  EXPECT_GT(counts[1], counts[0] * 5);
  EXPECT_GT(counts[1], counts[2] * 5);
}

TEST(RngTest, SampleWithoutReplacementUnique) {
  Rng rng(17);
  const auto s = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(s.size(), 20u);
  std::set<int32_t> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 20u);
  for (int32_t v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
}

TEST(RngTest, SampleClampsToPopulation) {
  Rng rng(19);
  EXPECT_EQ(rng.SampleWithoutReplacement(5, 100).size(), 5u);
  EXPECT_TRUE(rng.SampleWithoutReplacement(0, 3).empty());
  EXPECT_TRUE(rng.SampleWithoutReplacement(3, 0).empty());
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// --- string_util ------------------------------------------------------------

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(Join({}, "-"), "");
  EXPECT_EQ(Join({"only"}, ", "), "only");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x,,y", ','), (std::vector<std::string>{"x", "", "y"}));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.0B");
  EXPECT_EQ(HumanBytes(1536), "1.5KB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.0MB");
}

TEST(StringUtilTest, Padding) {
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("abcde", 3), "abcde");
}

TEST(StringUtilTest, DisplayWidth) {
  EXPECT_EQ(DisplayWidth(""), 0u);
  EXPECT_EQ(DisplayWidth("abc"), 3u);
  // "±" is two bytes but one terminal column.
  EXPECT_EQ(std::string("±").size(), 2u);
  EXPECT_EQ(DisplayWidth("±"), 1u);
  EXPECT_EQ(DisplayWidth("91.27 ± 0.46"), 12u);
}

TEST(StringUtilTest, JsonEscape) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

// --- TablePrinter ----------------------------------------------------------

TEST(TablePrinterTest, ToJsonEscapesAndPadsRows) {
  TablePrinter t({"Method", "Acc"});
  t.AddRow({"Free\"HGC", "91.27 ± 0.46"});
  t.AddRow({"short"});  // padded to header arity
  EXPECT_EQ(t.ToJson(),
            "{\"headers\": [\"Method\", \"Acc\"], "
            "\"rows\": [[\"Free\\\"HGC\", \"91.27 ± 0.46\"], "
            "[\"short\", \"\"]]}");
}

TEST(TablePrinterTest, RightAlignsNumericColumnsByDisplayWidth) {
  TablePrinter t({"Method", "Acc"});
  t.AddRow({"FreeHGC", "91.27 ± 0.46"});
  t.AddRow({"HGCond", "OOM"});
  testing::internal::CaptureStdout();
  t.Print();
  const std::string out = testing::internal::GetCapturedStdout();
  // Method column is text (left-aligned); Acc is numeric (right-aligned,
  // "OOM" counts as a numeric placeholder). The "±" must occupy one
  // column, so the numeric column pads to 12 display cells, not 13 bytes.
  EXPECT_NE(out.find("| FreeHGC | 91.27 ± 0.46 |"), std::string::npos) << out;
  EXPECT_NE(out.find("| HGCond  |          OOM |"), std::string::npos) << out;
}

// --- Timer -----------------------------------------------------------------

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink += std::sqrt(double(i));
  EXPECT_GT(t.ElapsedSeconds(), 0.0);
  const double a = t.ElapsedMillis();
  const double b = t.ElapsedMillis();
  EXPECT_LE(a, b);  // monotone
  t.Reset();
  EXPECT_LE(t.ElapsedSeconds(), b / 1e3);
}

// --- Crc32 -----------------------------------------------------------------

TEST(Crc32Test, MatchesKnownVector) {
  // The standard CRC-32 check value ("123456789" under IEEE 802.3).
  const char check[] = "123456789";
  EXPECT_EQ(Crc32(check, 9), 0xcbf43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(Crc32Test, IncrementalChainingEqualsOneShot) {
  Rng rng(7);
  std::vector<uint8_t> buf(10000);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.NextU64());
  const uint32_t whole = Crc32(buf.data(), buf.size());
  for (size_t cut : {size_t{0}, size_t{1}, size_t{4095}, size_t{4096},
                     size_t{9999}, buf.size()}) {
    const uint32_t head = Crc32(buf.data(), cut);
    EXPECT_EQ(Crc32(buf.data() + cut, buf.size() - cut, head), whole)
        << "cut=" << cut;
  }
}

TEST(Crc32Test, SimdAndPortableKernelsAgree) {
  // Differential: the dispatching kernel vs the slice-by-8 reference, at
  // lengths straddling the SIMD kernel's block and tail handling.
  Rng rng(13);
  std::vector<uint8_t> buf(70000);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.NextU64());
  for (size_t n : {size_t{0}, size_t{1}, size_t{15}, size_t{16}, size_t{63},
                   size_t{64}, size_t{65}, size_t{255}, size_t{4096},
                   size_t{65521}, buf.size()}) {
    // Offset by 3 so the SIMD path also exercises misaligned input.
    const size_t off = n < 3 ? 0 : 3;
    const size_t len = n - off;
    EXPECT_EQ(Crc32(buf.data() + off, len, 0x1234u),
              internal::Crc32Portable(buf.data() + off, len, 0x1234u))
        << "n=" << n;
  }
}

// --- MappedFile ------------------------------------------------------------

TEST(MappedFileTest, MapsFileContentsReadOnly) {
  const std::string path = "/tmp/freehgc_test_mapped_file.bin";
  const std::string content = "freehgc mapped-file test payload";
  {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
  }
  auto mf = MappedFile::Open(path);
  ASSERT_TRUE(mf.ok()) << mf.status().ToString();
  ASSERT_EQ(mf->size(), content.size());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(mf->data()),
                        mf->size()),
            content);
  EXPECT_EQ(mf->path(), path);
  // Advisory hints must never break the mapping.
  for (auto p : {MappedFile::AccessPattern::kSequential,
                 MappedFile::AccessPattern::kRandom,
                 MappedFile::AccessPattern::kWillNeed,
                 MappedFile::AccessPattern::kNormal}) {
    mf->Advise(p);
    EXPECT_EQ(mf->data()[0], static_cast<uint8_t>('f'));
  }
  std::remove(path.c_str());
}

TEST(MappedFileTest, MissingFileIsAnError) {
  EXPECT_FALSE(MappedFile::Open("/tmp/freehgc_no_such_file_xyz").ok());
}

TEST(MappedFileTest, EmptyFileMapsToNullView) {
  const std::string path = "/tmp/freehgc_test_mapped_empty.bin";
  std::fclose(std::fopen(path.c_str(), "wb"));
  auto mf = MappedFile::Open(path);
  ASSERT_TRUE(mf.ok()) << mf.status().ToString();
  EXPECT_EQ(mf->size(), 0u);
  std::remove(path.c_str());
}

TEST(MappedFileTest, SharedMappingOutlivesUnlink) {
  const std::string path = "/tmp/freehgc_test_mapped_shared.bin";
  {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("keepalive", f);
    std::fclose(f);
  }
  auto mf = MappedFile::OpenShared(path);
  ASSERT_TRUE(mf.ok());
  std::remove(path.c_str());  // pages stay valid until the last ref drops
  std::shared_ptr<const MappedFile> held = *mf;
  EXPECT_EQ(held->size(), 9u);
  EXPECT_EQ(held->data()[0], static_cast<uint8_t>('k'));
}

// --- ArrayRef --------------------------------------------------------------

TEST(ArrayRefTest, OwnedAndViewStates) {
  ArrayRef<int32_t> owned(std::vector<int32_t>{1, 2, 3});
  EXPECT_FALSE(owned.is_view());
  EXPECT_EQ(owned.size(), 3u);
  EXPECT_EQ(owned.OwnedBytes(), 3 * sizeof(int32_t));
  EXPECT_EQ(owned[2], 3);

  const std::vector<int32_t> backing = {7, 8, 9, 10};
  auto keepalive = std::make_shared<int>(0);
  ArrayRef<int32_t> view = ArrayRef<int32_t>::View(
      std::span<const int32_t>(backing), keepalive);
  EXPECT_TRUE(view.is_view());
  EXPECT_EQ(view.OwnedBytes(), 0u);
  EXPECT_EQ(view.data(), backing.data());  // zero-copy

  // Copying a view shares the keepalive; copying owned deep-copies.
  ArrayRef<int32_t> view_copy = view;
  EXPECT_TRUE(view_copy.is_view());
  EXPECT_EQ(view_copy.data(), backing.data());
  EXPECT_GE(keepalive.use_count(), 3);
  ArrayRef<int32_t> owned_copy = owned;
  EXPECT_NE(owned_copy.data(), owned.data());

  // Mutable() detaches copy-on-write: the view becomes owned, the
  // backing is untouched.
  view_copy.Mutable()[0] = 99;
  EXPECT_FALSE(view_copy.is_view());
  EXPECT_EQ(view_copy[0], 99);
  EXPECT_EQ(backing[0], 7);
  EXPECT_EQ(view[0], 7);
}

}  // namespace
}  // namespace freehgc
