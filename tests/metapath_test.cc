#include <gtest/gtest.h>

#include "metapath/metapath.h"
#include "sparse/ops.h"

namespace freehgc {
namespace {

CsrMatrix Adj(int32_t rows, int32_t cols, std::vector<CooEntry> e) {
  auto r = CsrMatrix::FromCoo(rows, cols, std::move(e));
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

/// Paper-Author-Subject toy schema (with reverses).
HeteroGraph BuildPas() {
  HeteroGraph g;
  const TypeId p = g.AddNodeType("p", 3).value();
  const TypeId a = g.AddNodeType("a", 2).value();
  const TypeId s = g.AddNodeType("s", 2).value();
  EXPECT_TRUE(g.AddRelation("pa", p, a,
                            Adj(3, 2, {{0, 0, 1}, {1, 0, 1}, {2, 1, 1}}))
                  .ok());
  EXPECT_TRUE(
      g.AddRelation("ps", p, s, Adj(3, 2, {{0, 0, 1}, {1, 1, 1}, {2, 1, 1}}))
          .ok());
  g.EnsureReverseRelations();
  EXPECT_TRUE(g.SetTarget(p, {0, 1, 0}, 2).ok());
  return g;
}

TEST(MetaPathTest, EnumerationCountsAndNames) {
  HeteroGraph g = BuildPas();
  MetaPathOptions opts;
  opts.max_hops = 1;
  auto paths = EnumerateMetaPaths(g, g.target_type(), opts);
  // From p, 1 hop: pa, ps -> 2 paths.
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].Name(g), "p-a");
  EXPECT_EQ(paths[0].hops(), 1);
  EXPECT_EQ(paths[0].start_type(), g.target_type());

  opts.max_hops = 2;
  paths = EnumerateMetaPaths(g, g.target_type(), opts);
  // 1-hop: pa, ps. 2-hop: pa->rev_pa (a->p), ps->rev_ps (s->p): p-a-p and
  // p-s-p.
  ASSERT_EQ(paths.size(), 4u);
}

TEST(MetaPathTest, MaxPathsCapRespected) {
  HeteroGraph g = BuildPas();
  MetaPathOptions opts;
  opts.max_hops = 4;
  opts.max_paths = 3;
  EXPECT_EQ(EnumerateMetaPaths(g, g.target_type(), opts).size(), 3u);
}

TEST(MetaPathTest, FilterByEndType) {
  HeteroGraph g = BuildPas();
  MetaPathOptions opts;
  opts.max_hops = 2;
  auto paths = EnumerateMetaPaths(g, g.target_type(), opts);
  const TypeId a = g.TypeByName("a").value();
  for (const auto& p : FilterByEndType(paths, a)) {
    EXPECT_EQ(p.end_type(), a);
  }
  EXPECT_EQ(FilterByEndType(paths, a).size(), 1u);
}

TEST(MetaPathTest, ComposeMatchesManualProduct) {
  HeteroGraph g = BuildPas();
  MetaPathOptions opts;
  opts.max_hops = 2;
  auto paths = EnumerateMetaPaths(g, g.target_type(), opts);
  // Find the p-a-p path.
  const MetaPath* pap = nullptr;
  for (const auto& p : paths) {
    if (p.Name(g) == "p-a-p") pap = &p;
  }
  ASSERT_NE(pap, nullptr);
  CsrMatrix composed = ComposeAdjacency(g, *pap);
  // papers 0 and 1 share author 0 -> they reach each other (and
  // themselves); paper 2 only itself.
  EXPECT_TRUE(composed.Contains(0, 1));
  EXPECT_TRUE(composed.Contains(1, 0));
  EXPECT_TRUE(composed.Contains(0, 0));
  EXPECT_FALSE(composed.Contains(0, 2));
  EXPECT_FALSE(composed.Contains(2, 0));
  // Row-stochastic: rows sum to 1.
  for (int32_t r = 0; r < composed.rows(); ++r) {
    EXPECT_NEAR(composed.RowSum(r), 1.0f, 1e-5f);
  }
}

TEST(JaccardTest, SortedSetBasics) {
  std::vector<int32_t> a = {1, 2, 3};
  std::vector<int32_t> b = {2, 3, 4};
  std::vector<int32_t> empty;
  EXPECT_FLOAT_EQ(JaccardOfSortedSets(a, b), 0.5f);
  EXPECT_FLOAT_EQ(JaccardOfSortedSets(a, a), 1.0f);
  // Paper convention: two empty sets are fully similar.
  EXPECT_FLOAT_EQ(JaccardOfSortedSets(empty, empty), 1.0f);
  EXPECT_FLOAT_EQ(JaccardOfSortedSets(a, empty), 0.0f);
}

TEST(JaccardTest, PerNodeAveragesPairs) {
  // Two 2x3 "paths": node 0 has identical reach sets (J=1); node 1 has
  // disjoint ones (J=0).
  CsrMatrix p1 = Adj(2, 3, {{0, 0, 1}, {0, 1, 1}, {1, 0, 1}});
  CsrMatrix p2 = Adj(2, 3, {{0, 0, 1}, {0, 1, 1}, {1, 2, 1}});
  const auto j = PerNodeJaccard({&p1, &p2});
  EXPECT_FLOAT_EQ(j[0], 1.0f);
  EXPECT_FLOAT_EQ(j[1], 0.0f);
}

TEST(JaccardTest, SinglePathYieldsZero) {
  CsrMatrix p1 = Adj(2, 2, {{0, 0, 1}});
  EXPECT_EQ(PerNodeJaccard({&p1}), (std::vector<float>{0.0f, 0.0f}));
  const auto pp = PerPathJaccard({&p1});
  EXPECT_EQ(pp[0], (std::vector<float>{0.0f, 0.0f}));
}

TEST(JaccardTest, PerPathSymmetricForTwoPaths) {
  CsrMatrix p1 = Adj(1, 4, {{0, 0, 1}, {0, 1, 1}});
  CsrMatrix p2 = Adj(1, 4, {{0, 1, 1}, {0, 2, 1}});
  const auto pp = PerPathJaccard({&p1, &p2});
  // J({0,1},{1,2}) = 1/3; with two paths each path's mean equals that.
  EXPECT_NEAR(pp[0][0], 1.0f / 3.0f, 1e-6f);
  EXPECT_NEAR(pp[1][0], 1.0f / 3.0f, 1e-6f);
}

TEST(JaccardTest, PerPathThreePaths) {
  // Three paths for one node: sets {0},{0},{1}.
  CsrMatrix p1 = Adj(1, 2, {{0, 0, 1}});
  CsrMatrix p2 = Adj(1, 2, {{0, 0, 1}});
  CsrMatrix p3 = Adj(1, 2, {{0, 1, 1}});
  const auto pp = PerPathJaccard({&p1, &p2, &p3});
  // Path 1 vs {p2: 1, p3: 0} -> mean 0.5. Path 3 vs {0, 0} -> 0.
  EXPECT_NEAR(pp[0][0], 0.5f, 1e-6f);
  EXPECT_NEAR(pp[1][0], 0.5f, 1e-6f);
  EXPECT_NEAR(pp[2][0], 0.0f, 1e-6f);
}

}  // namespace
}  // namespace freehgc
