#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "datasets/generator.h"
#include "exec/exec_context.h"
#include "graph/serialize.h"
#include "obs/access_log.h"
#include "obs/exposition.h"
#include "pipeline/method.h"
#include "serve/client.h"
#include "serve/graph_store.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/wire.h"

namespace freehgc::serve {
namespace {

// ---------------------------------------------------------------------------
// GraphStore

TEST(GraphStoreTest, RegisterGetInfoListRemove) {
  GraphStore store;
  auto info = store.Register("toy", datasets::MakeToy(5));
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->name, "toy");
  EXPECT_GT(info->nodes, 0);
  EXPECT_GT(info->memory_bytes, 0u);

  auto ref = store.Get("toy");
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ((*ref)->TotalNodes(), info->nodes);
  EXPECT_EQ(store.Count(), 1);
  EXPECT_EQ(store.List().size(), 1u);
  EXPECT_EQ(store.Get("missing").status().code(), StatusCode::kNotFound);

  // References survive Remove: the store only unlinks the name.
  GraphStore::GraphRef held = *ref;
  EXPECT_TRUE(store.Remove("toy"));
  EXPECT_FALSE(store.Remove("toy"));
  EXPECT_EQ(store.Count(), 0);
  EXPECT_EQ(held->TotalNodes(), info->nodes);
}

TEST(GraphStoreTest, IdempotentOnSameContentConflictOnDifferent) {
  GraphStore store;
  ASSERT_TRUE(store.Register("g", datasets::MakeToy(5)).ok());
  // Same bytes: fine (idempotent upload retry).
  EXPECT_TRUE(store.Register("g", datasets::MakeToy(5)).ok());
  // Different content under the same name: refused.
  auto conflict = store.Register("g", datasets::MakeToy(6));
  ASSERT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.status().code(), StatusCode::kFailedPrecondition);
}

TEST(GraphStoreTest, SerializedUploadRoundTripsAndRejectsCorrupt) {
  const HeteroGraph g = datasets::MakeToy(9);
  auto bytes = SerializeHeteroGraph(g);
  ASSERT_TRUE(bytes.ok());

  GraphStore store;
  auto info = store.RegisterSerialized("up", *bytes);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->fingerprint, g.ContentFingerprint());

  std::string corrupt = *bytes;
  corrupt[corrupt.size() / 2] =
      static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x5a);
  auto bad = store.RegisterSerialized("bad", corrupt);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store.Count(), 1);  // nothing was registered

  auto trunc = store.RegisterSerialized(
      "short", std::string_view(*bytes).substr(0, bytes->size() / 3));
  ASSERT_FALSE(trunc.ok());
  EXPECT_EQ(trunc.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphStoreTest, GeneratorPresets) {
  GraphStore store;
  ASSERT_TRUE(store.RegisterGenerator("t", "toy", 1, 0.0).ok());
  EXPECT_EQ(store.RegisterGenerator("x", "no_such_preset", 1, 1.0)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(GraphStoreTest, MappedFileRegistrationIsZeroCopyResident) {
  const HeteroGraph g = datasets::MakeToy(21);
  const std::string path = "/tmp/freehgc_test_store_map.fhgc";
  ASSERT_TRUE(SaveHeteroGraphV3(g, path).ok());

  GraphStore store;
  auto info = store.RegisterMappedFile("toy", path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info->mapped);
  EXPECT_EQ(info->source_path, path);
  EXPECT_EQ(info->fingerprint, g.ContentFingerprint());
  EXPECT_EQ(info->memory_bytes, g.MemoryBytes());
  EXPECT_EQ(store.MappedCount(), 1);
  // Mapped arrays live in the page cache: resident heap is only the
  // labels/splits, far below the logical footprint.
  EXPECT_LT(store.ResidentBytes(), info->memory_bytes);

  auto ref = store.Get("toy");
  ASSERT_TRUE(ref.ok());
  EXPECT_TRUE((*ref)->IsMapped());
  EXPECT_EQ((*ref)->ContentFingerprint(), g.ContentFingerprint());

  // The mapping survives Remove + file unlink while a reference is held.
  GraphStore::GraphRef held = *ref;
  EXPECT_TRUE(store.Remove("toy"));
  std::remove(path.c_str());
  EXPECT_EQ(held->ContentFingerprint(), g.ContentFingerprint());

  auto missing = store.RegisterMappedFile("gone", path);
  EXPECT_FALSE(missing.ok());
}

TEST(GraphStoreTest, SpoolDirTurnsUploadsIntoMappedResidents) {
  const HeteroGraph g = datasets::MakeToy(33);
  auto bytes = SerializeHeteroGraph(g);
  ASSERT_TRUE(bytes.ok());

  const std::string spool = "/tmp/freehgc_test_spool";
  GraphStore store;
  ASSERT_TRUE(store.SetSpoolDir(spool).ok());
  auto info = store.RegisterSerialized("up", *bytes);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info->mapped);
  EXPECT_EQ(info->fingerprint, g.ContentFingerprint());
  ASSERT_FALSE(info->source_path.empty());

  // The spooled container is a valid v3 file a restarted server can
  // re-register directly (catalog rehydration without re-upload).
  auto remapped = MapHeteroGraphDetailed(info->source_path);
  ASSERT_TRUE(remapped.ok()) << remapped.status().ToString();
  EXPECT_EQ(remapped->fingerprint, g.ContentFingerprint());

  // A condensation request against the mapped resident matches the heap
  // answer bit for bit (the graphs are bit-identical by fingerprint).
  auto ref = store.Get("up");
  ASSERT_TRUE(ref.ok());
  EXPECT_TRUE((*ref)->IsMapped());
  EXPECT_EQ((*ref)->labels(), g.labels());

  std::remove(info->source_path.c_str());
  ::rmdir(spool.c_str());
}

// ---------------------------------------------------------------------------
// MethodRegistry satellite: unknown keys name what exists.

TEST(MethodRegistryTest, UnknownKeyErrorListsRegisteredMethods) {
  auto res = pipeline::MethodRegistry::Global().FindOrError("nope");
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kNotFound);
  const std::string& msg = res.status().message();
  EXPECT_NE(msg.find("'nope'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("freehgc"), std::string::npos) << msg;
  EXPECT_NE(msg.find("herding"), std::string::npos) << msg;
}

// ---------------------------------------------------------------------------
// RequestScheduler, driven by stub work bodies.

/// Work body that blocks until released — lets tests fill slots and the
/// queue deterministically.
struct Latch {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  std::atomic<int> entered{0};

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  void BlockUntilReleased() {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return open; });
  }
  void WaitForEntered(int n) {
    while (entered.load() < n) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
};

TEST(SchedulerTest, OverloadShedsWithResourceExhaustedWithoutDeadlock) {
  Latch latch;
  RequestScheduler sched(
      /*slots=*/1, /*queue_capacity=*/2, /*threads_per_slot=*/1,
      [&](const CondenseRequest&, const RequestContext&) -> Result<CondenseReply> {
        latch.BlockUntilReleased();
        return CondenseReply{};
      });

  // One request occupies the slot, two fill the queue.
  auto running = sched.Submit({});
  ASSERT_TRUE(running.ok());
  latch.WaitForEntered(1);
  auto q1 = sched.Submit({});
  auto q2 = sched.Submit({});
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());

  // Queue is at capacity: the next submission is shed, not stalled.
  auto shed = sched.Submit({});
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(sched.stats().shed, 1);

  latch.Release();
  EXPECT_TRUE((*running)->Wait().ok());
  EXPECT_TRUE((*q1)->Wait().ok());
  EXPECT_TRUE((*q2)->Wait().ok());
  sched.Shutdown();
  EXPECT_EQ(sched.stats().completed, 3);
}

// Spill-aware admission: a guard that reports budget pressure sheds the
// request with kResourceExhausted and counts it separately from
// queue-full sheds; clearing the guard restores admission.
TEST(SchedulerTest, AdmissionGuardShedsWithBudgetStatus) {
  RequestScheduler sched(
      /*slots=*/1, /*queue_capacity=*/4, /*threads_per_slot=*/1,
      [&](const CondenseRequest&,
          const RequestContext&) -> Result<CondenseReply> {
        return CondenseReply{};
      });
  sched.set_admission_guard([] {
    return Status::ResourceExhausted("artifact cache under budget pressure");
  });

  auto shed = sched.Submit({});
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.status().message().find("budget"), std::string::npos);
  EXPECT_EQ(sched.stats().shed, 1);
  EXPECT_EQ(sched.stats().shed_budget, 1);

  sched.set_admission_guard(nullptr);
  auto admitted = sched.Submit({});
  ASSERT_TRUE(admitted.ok());
  EXPECT_TRUE((*admitted)->Wait().ok());
  sched.Shutdown();
  EXPECT_EQ(sched.stats().completed, 1);
  EXPECT_EQ(sched.stats().shed_budget, 1);  // unchanged by the clear
}

TEST(SchedulerTest, CancelledQueuedRequestNeverRuns) {
  Latch latch;
  std::atomic<int> executed{0};
  RequestScheduler sched(
      1, 8, 1,
      [&](const CondenseRequest&, const RequestContext&) -> Result<CondenseReply> {
        executed.fetch_add(1);
        latch.BlockUntilReleased();
        return CondenseReply{};
      });

  auto running = sched.Submit({});
  ASSERT_TRUE(running.ok());
  latch.WaitForEntered(1);
  auto queued = sched.Submit({});
  ASSERT_TRUE(queued.ok());

  EXPECT_TRUE(sched.Cancel((*queued)->id()));
  EXPECT_FALSE(sched.Cancel((*queued)->id()));  // already terminal
  EXPECT_FALSE(sched.Cancel((*running)->id()));  // running: not cancellable
  EXPECT_EQ((*queued)->Wait().status().code(), StatusCode::kCancelled);

  latch.Release();
  EXPECT_TRUE((*running)->Wait().ok());
  sched.Shutdown();
  EXPECT_EQ(executed.load(), 1);  // the cancelled request never ran
  EXPECT_EQ(sched.stats().cancelled, 1);
}

TEST(SchedulerTest, ExpiredQueuedRequestNeverRuns) {
  Latch latch;
  std::atomic<int> executed{0};
  RequestScheduler sched(
      1, 8, 1,
      [&](const CondenseRequest&, const RequestContext&) -> Result<CondenseReply> {
        executed.fetch_add(1);
        latch.BlockUntilReleased();
        return CondenseReply{};
      });

  auto running = sched.Submit({});
  ASSERT_TRUE(running.ok());
  latch.WaitForEntered(1);
  CondenseRequest short_deadline;
  short_deadline.deadline_ms = 20;
  auto queued = sched.Submit(short_deadline);
  ASSERT_TRUE(queued.ok());

  // Hold the slot well past the deadline, then release.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  latch.Release();
  EXPECT_EQ((*queued)->Wait().status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE((*running)->Wait().ok());
  sched.Shutdown();
  EXPECT_EQ(executed.load(), 1);
  EXPECT_EQ(sched.stats().expired, 1);
}

TEST(SchedulerTest, PriorityOrderFifoWithinPriority) {
  Latch latch;
  std::mutex order_mu;
  std::vector<uint64_t> order;
  RequestScheduler sched(
      1, 16, 1,
      [&](const CondenseRequest& req,
          const RequestContext&) -> Result<CondenseReply> {
        if (req.seed == 0) {
          latch.BlockUntilReleased();  // the slot-occupier
        } else {
          std::lock_guard<std::mutex> lock(order_mu);
          order.push_back(req.seed);
        }
        return CondenseReply{};
      });

  CondenseRequest blocker;
  blocker.seed = 0;
  ASSERT_TRUE(sched.Submit(blocker).ok());
  latch.WaitForEntered(1);

  // Queue: two low-priority, then two high-priority. High (smaller value)
  // must run first; FIFO inside each class.
  for (uint64_t seed : {101, 102}) {
    CondenseRequest r;
    r.seed = seed;
    r.priority = 5;
    ASSERT_TRUE(sched.Submit(r).ok());
  }
  for (uint64_t seed : {201, 202}) {
    CondenseRequest r;
    r.seed = seed;
    r.priority = 1;
    ASSERT_TRUE(sched.Submit(r).ok());
  }
  latch.Release();
  sched.Shutdown();
  EXPECT_EQ(order, (std::vector<uint64_t>{201, 202, 101, 102}));
}

TEST(SchedulerTest, GracefulShutdownDrainsInflightAndQueued) {
  Latch latch;
  std::atomic<int> executed{0};
  RequestScheduler sched(
      1, 8, 1,
      [&](const CondenseRequest&, const RequestContext&) -> Result<CondenseReply> {
        executed.fetch_add(1);
        latch.BlockUntilReleased();
        return CondenseReply{};
      });
  std::vector<TicketPtr> tickets;
  for (int i = 0; i < 4; ++i) {
    auto t = sched.Submit({});
    ASSERT_TRUE(t.ok());
    tickets.push_back(*t);
  }
  latch.WaitForEntered(1);
  // Release from a helper thread so Shutdown (which blocks on the drain)
  // can be the call under test.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    latch.Release();
  });
  sched.Shutdown(ShutdownMode::kDrain);
  releaser.join();
  EXPECT_EQ(executed.load(), 4);
  for (auto& t : tickets) EXPECT_TRUE(t->Wait().ok());
  // Post-shutdown submissions are refused.
  EXPECT_EQ(sched.Submit({}).status().code(), StatusCode::kUnavailable);
}

TEST(SchedulerTest, CancelQueuedShutdownFailsQueuedRuns) {
  Latch latch;
  std::atomic<int> executed{0};
  RequestScheduler sched(
      1, 8, 1,
      [&](const CondenseRequest&, const RequestContext&) -> Result<CondenseReply> {
        executed.fetch_add(1);
        latch.BlockUntilReleased();
        return CondenseReply{};
      });
  auto running = sched.Submit({});
  auto queued = sched.Submit({});
  ASSERT_TRUE(running.ok());
  ASSERT_TRUE(queued.ok());
  latch.WaitForEntered(1);
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    latch.Release();
  });
  sched.Shutdown(ShutdownMode::kCancelQueued);
  releaser.join();
  EXPECT_EQ(executed.load(), 1);  // the queued request was dropped
  EXPECT_TRUE((*running)->Wait().ok());
  EXPECT_EQ((*queued)->Wait().status().code(), StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// RequestScheduler QoS: coalescing, aging, SLO shed, dispatch cap.

TEST(SchedulerTest, CoalescedDuplicatesAllGetBitIdenticalReply) {
  const std::string path = testing::TempDir() + "/coalesce_access.jsonl";
  std::remove(path.c_str());
  obs::AccessLog log;
  ASSERT_TRUE(log.Open(path).ok());

  Latch latch;
  std::atomic<int> execs{0};
  SchedulerOptions opts;
  opts.slots = 1;
  opts.queue_capacity = 8;
  opts.threads_per_slot = 1;
  RequestScheduler sched(
      opts,
      [&](const CondenseRequest& req,
          const RequestContext& rctx) -> Result<CondenseReply> {
        latch.BlockUntilReleased();
        CondenseReply reply;
        reply.request_id = rctx.id;
        // Distinct per execution: if a duplicate ever re-executed, its
        // reply would differ and the bit-identity checks below fail.
        reply.nodes = 100 + execs.fetch_add(1);
        reply.graph_bytes = "payload-" + std::to_string(req.seed);
        return reply;
      });
  sched.set_telemetry(&log, [](obs::AccessRecord&) {});
  sched.set_coalesce_key(
      [](const CondenseRequest& req) -> uint64_t { return req.seed + 1; });

  CondenseRequest req;
  req.seed = 9;
  auto leader = sched.Submit(req);
  ASSERT_TRUE(leader.ok());
  latch.WaitForEntered(1);  // leader is executing, key still in flight

  auto f1 = sched.Submit(req);
  auto f2 = sched.Submit(req);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(sched.stats().coalesced, 2);

  CondenseRequest other;
  other.seed = 10;  // distinct key: queues normally, runs for real
  auto distinct = sched.Submit(other);
  ASSERT_TRUE(distinct.ok());

  latch.Release();
  const Result<CondenseReply> lead_reply = (*leader)->Wait();
  const Result<CondenseReply> f1_reply = (*f1)->Wait();
  const Result<CondenseReply> f2_reply = (*f2)->Wait();
  ASSERT_TRUE(lead_reply.ok());
  ASSERT_TRUE(f1_reply.ok());
  ASSERT_TRUE(f2_reply.ok());
  EXPECT_TRUE((*distinct)->Wait().ok());
  sched.Shutdown();

  // Followers receive a verbatim copy of the leader's reply — including
  // the leader's request id, the join key for tracing.
  for (const auto* r : {&f1_reply, &f2_reply}) {
    EXPECT_EQ((*r)->request_id, lead_reply->request_id);
    EXPECT_EQ((*r)->nodes, lead_reply->nodes);
    EXPECT_EQ((*r)->graph_bytes, lead_reply->graph_bytes);
  }
  EXPECT_EQ(execs.load(), 2);  // leader + the distinct request only
  EXPECT_EQ(sched.stats().completed, 4);

  // Each follower still logs its own terminal line, tagged "coalesced",
  // under its own ticket id.
  log.Close();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int coalesced_lines = 0;
  std::set<unsigned long long> ids;
  while (std::getline(in, line)) {
    unsigned long long id = 0;
    ASSERT_EQ(std::sscanf(line.c_str(), "{\"id\": %llu,", &id), 1) << line;
    EXPECT_TRUE(ids.insert(id).second) << "duplicate id " << id;
    if (line.find("\"reason\": \"coalesced\"") != std::string::npos) {
      ++coalesced_lines;
    }
  }
  EXPECT_EQ(coalesced_lines, 2);
  EXPECT_EQ(ids.size(), 4u);
  std::remove(path.c_str());
}

TEST(SchedulerTest, AgedLowPriorityOvertakesFreshHighPriority) {
  Latch latch;
  std::mutex order_mu;
  std::vector<uint64_t> order;
  SchedulerOptions opts;
  opts.slots = 1;
  opts.queue_capacity = 16;
  opts.threads_per_slot = 1;
  opts.aging_quantum_ms = 10;
  RequestScheduler sched(
      opts,
      [&](const CondenseRequest& req,
          const RequestContext&) -> Result<CondenseReply> {
        if (req.graph == "blocker") latch.BlockUntilReleased();
        std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(req.seed);
        return CondenseReply{};
      });

  CondenseRequest blocker;
  blocker.graph = "blocker";
  blocker.seed = 777;  // distinct from the flood's seeds 1-5
  ASSERT_TRUE(sched.Submit(blocker).ok());
  latch.WaitForEntered(1);

  // A low-priority request waits long enough to age past a later flood
  // of fresh high-priority ones: effective priority 5 - 120ms/10ms < 0.
  CondenseRequest low;
  low.seed = 999;
  low.priority = 5;
  std::vector<TicketPtr> tickets;
  {
    auto t = sched.Submit(low);
    ASSERT_TRUE(t.ok());
    tickets.push_back(*t);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  for (uint64_t s = 1; s <= 5; ++s) {
    CondenseRequest fresh;
    fresh.seed = s;
    fresh.priority = 0;
    auto t = sched.Submit(fresh);
    ASSERT_TRUE(t.ok());
    tickets.push_back(*t);
  }

  latch.Release();
  for (auto& t : tickets) EXPECT_TRUE(t->Wait().ok());
  sched.Shutdown();

  ASSERT_GE(order.size(), 2u);
  EXPECT_EQ(order[0], 777u);  // the blocker itself
  EXPECT_EQ(order[1], 999u);  // aged request dispatches first
  EXPECT_GE(sched.stats().aged, 1);
}

TEST(SchedulerTest, SloShedIsResourceExhaustedWithDistinctReason) {
  const std::string path = testing::TempDir() + "/slo_access.jsonl";
  std::remove(path.c_str());
  obs::AccessLog log;
  ASSERT_TRUE(log.Open(path).ok());

  Latch latch;
  SchedulerOptions opts;
  opts.slots = 1;
  opts.queue_capacity = 8;
  opts.threads_per_slot = 1;
  opts.slo_ms = 5;
  RequestScheduler sched(
      opts,
      [&](const CondenseRequest& req,
          const RequestContext&) -> Result<CondenseReply> {
        if (req.graph == "blocker") latch.BlockUntilReleased();
        if (req.graph == "slow") {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        return CondenseReply{};
      });
  sched.set_telemetry(&log, [](obs::AccessRecord&) {});

  // Seed the execution-time EWMA with one ~20 ms completion. Admission
  // can't predict before it has seen at least one request finish.
  CondenseRequest warm;
  warm.graph = "slow";
  {
    auto t = sched.Submit(warm);
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE((*t)->Wait().ok());
  }

  CondenseRequest blocker;
  blocker.graph = "blocker";
  auto running = sched.Submit(blocker);
  ASSERT_TRUE(running.ok());
  latch.WaitForEntered(1);
  auto queued = sched.Submit({});
  ASSERT_TRUE(queued.ok());

  // Predicted queue wait: one queued request at ~20 ms mean execution —
  // far past the 5 ms SLO. Shed at admission, with a reason distinct
  // from queue-full shedding. (The blocker and the first queued request
  // were admitted at an empty queue: predicted wait 0.)
  auto shed = sched.Submit({});
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.status().message().find("SLO shed"), std::string::npos)
      << shed.status().message();
  EXPECT_EQ(sched.stats().shed, 1);
  EXPECT_EQ(sched.stats().shed_slo, 1);

  latch.Release();
  EXPECT_TRUE((*running)->Wait().ok());
  EXPECT_TRUE((*queued)->Wait().ok());
  sched.Shutdown();

  // The access log's shed line carries the SLO reason.
  log.Close();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int slo_lines = 0;
  while (std::getline(in, line)) {
    if (line.find("\"outcome\": \"shed\"") != std::string::npos) {
      EXPECT_NE(line.find("SLO shed"), std::string::npos) << line;
      ++slo_lines;
    }
  }
  EXPECT_EQ(slo_lines, 1);
  std::remove(path.c_str());
}

TEST(SchedulerTest, MaxConcurrentCapsDispatchBelowSlotCount) {
  // The multi-slot cold regression fix: surplus slots must park, not
  // time-slice. With max_concurrent=1, four slots never have more than
  // one request executing at once.
  Latch latch;
  SchedulerOptions opts;
  opts.slots = 4;
  opts.queue_capacity = 16;
  opts.threads_per_slot = 1;
  opts.max_concurrent = 1;
  RequestScheduler sched(
      opts,
      [&](const CondenseRequest&,
          const RequestContext&) -> Result<CondenseReply> {
        latch.BlockUntilReleased();
        return CondenseReply{};
      });

  std::vector<TicketPtr> tickets;
  for (int i = 0; i < 4; ++i) {
    auto t = sched.Submit({});
    ASSERT_TRUE(t.ok());
    tickets.push_back(*t);
  }
  latch.WaitForEntered(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(latch.entered.load(), 1);  // the other three are parked
  EXPECT_EQ(sched.stats().inflight, 1);

  latch.Release();
  for (auto& t : tickets) EXPECT_TRUE(t->Wait().ok());
  sched.Shutdown();
  EXPECT_EQ(sched.stats().completed, 4);

  // The default cap is the core budget: never more than the machine can
  // genuinely run, never more than the slot count.
  EXPECT_EQ(exec::ConcurrentSlotBudget(4),
            std::min(4, exec::DefaultNumThreads()));
  EXPECT_EQ(exec::ConcurrentSlotBudget(1), 1);
  EXPECT_GE(exec::ConcurrentSlotBudget(0), 1);
}

// ---------------------------------------------------------------------------
// ServeService: real condensation through the scheduler.

ServeOptions SmallServeOptions(int slots) {
  ServeOptions opts;
  opts.slots = slots;
  opts.queue_capacity = 64;
  opts.threads_per_slot = 1;
  return opts;
}

CondenseRequest ToyRequest(uint64_t seed) {
  CondenseRequest req;
  req.graph = "toy";
  req.method = "freehgc";
  req.ratio = 0.3;
  req.seed = seed;
  req.max_paths = 6;
  req.return_graph = true;
  return req;
}

/// Acceptance (a): K concurrent requests on the same graph are
/// bit-identical to sequential execution. Serialized output is the
/// byte-exact witness.
TEST(ServeServiceTest, ConcurrentResultsBitIdenticalToSequential) {
  constexpr int kRequests = 8;
  const uint64_t seeds[kRequests] = {1, 2, 3, 1, 2, 7, 7, 11};

  // Sequential reference: one slot, submitted one at a time.
  std::vector<std::string> reference;
  {
    ServeService service(SmallServeOptions(1));
    ASSERT_TRUE(service.store().Register("toy", datasets::MakeToy(5)).ok());
    for (uint64_t seed : seeds) {
      auto reply = service.Condense(ToyRequest(seed));
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      reference.push_back(reply->graph_bytes);
    }
    service.Shutdown();
  }

  // Concurrent run: 4 slots, all submitted up front.
  ServeService service(SmallServeOptions(4));
  ASSERT_TRUE(service.store().Register("toy", datasets::MakeToy(5)).ok());
  std::vector<TicketPtr> tickets;
  for (uint64_t seed : seeds) {
    auto t = service.Submit(ToyRequest(seed));
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    tickets.push_back(*t);
  }
  for (int i = 0; i < kRequests; ++i) {
    Result<CondenseReply>& reply = tickets[static_cast<size_t>(i)]->Wait();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->graph_bytes, reference[static_cast<size_t>(i)])
        << "request " << i << " (seed " << seeds[i]
        << ") diverged from sequential execution";
  }
  service.Shutdown();
}

/// Coalescing: K same-config requests build the EvalContext once.
TEST(ServeServiceTest, SameConfigRequestsCoalesceEvalContext) {
  ServeService service(SmallServeOptions(4));
  ASSERT_TRUE(service.store().Register("toy", datasets::MakeToy(5)).ok());
  std::vector<TicketPtr> tickets;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    auto t = service.Submit(ToyRequest(seed));
    ASSERT_TRUE(t.ok());
    tickets.push_back(*t);
  }
  for (auto& t : tickets) ASSERT_TRUE(t->Wait().ok());
  EXPECT_EQ(service.eval_context_builds(), 1);

  // A different meta-path config is a different context.
  CondenseRequest other = ToyRequest(1);
  other.max_paths = 3;
  ASSERT_TRUE(service.Condense(other).ok());
  EXPECT_EQ(service.eval_context_builds(), 2);
  service.Shutdown();
}

TEST(ServeServiceTest, IdenticalInflightRequestsCoalesceAtServiceLevel) {
  // Service-level wiring of request coalescing (on by default): a burst
  // of byte-identical requests on one slot produces identical replies,
  // and any that overlapped an in-flight twin rode its execution. The
  // count of coalesced requests is timing-dependent; the reply identity
  // and counter consistency are not.
  ServeService service(SmallServeOptions(1));
  ASSERT_TRUE(service.store().Register("toy", datasets::MakeToy(40)).ok());

  constexpr int kThreads = 6;
  std::vector<Result<CondenseReply>> replies(
      kThreads, Result<CondenseReply>(Status::Internal("unset")));
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back(
        [&, i] { replies[static_cast<size_t>(i)] = service.Condense(ToyRequest(5)); });
  }
  for (auto& t : threads) t.join();

  for (const auto& r : replies) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->graph_bytes, replies[0]->graph_bytes);
  }
  const SchedulerStats stats = service.scheduler_stats();
  EXPECT_EQ(stats.completed, kThreads);
  EXPECT_EQ(stats.admitted, kThreads);

  // The QoS counters surface in the stats JSON for operators.
  const std::string json = service.StatsJson();
  for (const char* key : {"\"coalesced\"", "\"shed_slo\"", "\"aged\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing";
  }
  service.Shutdown();
}

TEST(ServeServiceTest, ValidatesBeforeAdmission) {
  ServeService service(SmallServeOptions(1));
  ASSERT_TRUE(service.store().Register("toy", datasets::MakeToy(5)).ok());

  CondenseRequest unknown_graph = ToyRequest(1);
  unknown_graph.graph = "nope";
  EXPECT_EQ(service.Submit(unknown_graph).status().code(),
            StatusCode::kNotFound);

  CondenseRequest unknown_method = ToyRequest(1);
  unknown_method.method = "nope";
  auto res = service.Submit(unknown_method);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kNotFound);
  EXPECT_NE(res.status().message().find("registered:"), std::string::npos);

  CondenseRequest bad_ratio = ToyRequest(1);
  bad_ratio.ratio = 1.5;
  EXPECT_EQ(service.Submit(bad_ratio).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.scheduler_stats().admitted, 0);
  service.Shutdown();
}

TEST(ServeServiceTest, EvaluateReproducesPipelineRunMethod) {
  const HeteroGraph toy = datasets::MakeToy(5);
  ServeService service(SmallServeOptions(1));
  ASSERT_TRUE(service.store().Register("toy", toy).ok());
  CondenseRequest req = ToyRequest(3);
  req.evaluate = true;
  auto reply = service.Condense(req);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_TRUE(reply->evaluated);

  // The same run through the pipeline layer directly.
  hgnn::PropagateOptions popts;
  popts.max_paths = req.max_paths;
  hgnn::EvalContext ctx = hgnn::BuildEvalContext(toy, popts);
  pipeline::RunSpec spec;
  spec.ratio = req.ratio;
  spec.seed = req.seed;
  auto run = pipeline::RunMethod(ctx, "freehgc", spec,
                                 service.options().eval);
  ASSERT_TRUE(run.ok());
  EXPECT_FLOAT_EQ(reply->accuracy, run->accuracy);
  EXPECT_FLOAT_EQ(reply->macro_f1, run->macro_f1);
  service.Shutdown();
}

// ---------------------------------------------------------------------------
// Wire codecs.

TEST(WireTest, CodecsRoundTrip) {
  CondenseRequest req;
  req.graph = "acm";
  req.method = "herding";
  req.ratio = 0.05;
  req.seed = 42;
  req.max_hops = 3;
  req.max_paths = 7;
  req.max_row_nnz = 256;
  req.evaluate = true;
  req.return_graph = true;
  req.priority = -2;
  req.deadline_ms = 1500;
  WireWriter w;
  EncodeCondenseRequest(w, req);
  WireReader r(w.payload());
  auto back = DecodeCondenseRequest(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->graph, req.graph);
  EXPECT_EQ(back->method, req.method);
  EXPECT_EQ(back->ratio, req.ratio);
  EXPECT_EQ(back->seed, req.seed);
  EXPECT_EQ(back->max_hops, req.max_hops);
  EXPECT_EQ(back->max_paths, req.max_paths);
  EXPECT_EQ(back->max_row_nnz, req.max_row_nnz);
  EXPECT_EQ(back->evaluate, req.evaluate);
  EXPECT_EQ(back->return_graph, req.return_graph);
  EXPECT_EQ(back->priority, req.priority);
  EXPECT_EQ(back->deadline_ms, req.deadline_ms);
  EXPECT_EQ(r.remaining(), 0u);

  CondenseReply reply;
  reply.nodes = 42;
  reply.edges = 100;
  reply.storage_bytes = 2680;
  reply.condense_seconds = 0.125;
  reply.evaluated = true;
  reply.accuracy = 96.5f;
  reply.graph_bytes = std::string("\x00\x01\x02", 3);
  reply.graph_fingerprint = 0xdeadbeefcafef00dULL;
  reply.request_id = 7077;
  reply.evalctx_hit = true;
  WireWriter w2;
  EncodeCondenseReply(w2, reply);
  WireReader r2(w2.payload());
  auto reply_back = DecodeCondenseReply(r2);
  ASSERT_TRUE(reply_back.ok());
  EXPECT_EQ(reply_back->nodes, reply.nodes);
  EXPECT_EQ(reply_back->storage_bytes, reply.storage_bytes);
  EXPECT_EQ(reply_back->graph_bytes, reply.graph_bytes);
  EXPECT_EQ(reply_back->graph_fingerprint, reply.graph_fingerprint);
  EXPECT_FLOAT_EQ(reply_back->accuracy, reply.accuracy);
  EXPECT_EQ(reply_back->request_id, reply.request_id);
  EXPECT_TRUE(reply_back->evalctx_hit);
  EXPECT_EQ(r2.remaining(), 0u);
}

TEST(WireTest, GraphInfoCarriesMappedResidency) {
  GraphInfo info;
  info.name = "acm";
  info.fingerprint = 0x1234abcd5678ef90ULL;
  info.nodes = 10;
  info.edges = 20;
  info.memory_bytes = 4096;
  info.mapped = true;
  info.source_path = "/tmp/spool/x.fhgc";
  WireWriter w;
  EncodeGraphInfoList(w, {info});
  WireReader r(w.payload());
  auto back = DecodeGraphInfoList(r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), 1u);
  EXPECT_EQ((*back)[0].name, info.name);
  EXPECT_EQ((*back)[0].fingerprint, info.fingerprint);
  EXPECT_EQ((*back)[0].memory_bytes, info.memory_bytes);
  EXPECT_TRUE((*back)[0].mapped);
  EXPECT_EQ((*back)[0].source_path, info.source_path);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireTest, ReaderRejectsShortPayloads) {
  WireWriter w;
  w.PutString("hello");
  const std::string payload = w.payload();
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    WireReader r(std::string_view(payload).substr(0, cut));
    EXPECT_FALSE(r.GetString().ok()) << "cut=" << cut;
  }
  WireReader r(payload);
  auto s = r.GetString();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, "hello");
}

TEST(WireTest, ResponseEnvelopeCarriesStatus) {
  const std::string payload =
      EncodeResponse(Status::ResourceExhausted("queue full"), "body");
  auto resp = DecodeResponse(payload);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(resp->status.message(), "queue full");
  EXPECT_EQ(resp->body, "body");
}

TEST(WireTest, HelloInfoRoundTripsAndDefaultsToV1) {
  HelloInfo info;
  info.protocol_version = kProtocolVersion;
  info.features = kFeatureAdminOps | kFeatureFetchGraph;
  info.role = "serve";
  WireWriter w;
  EncodeHelloInfo(w, info);
  WireReader r(w.payload());
  auto back = DecodeHelloInfo(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->protocol_version, kProtocolVersion);
  EXPECT_EQ(back->features, kFeatureAdminOps | kFeatureFetchGraph);
  EXPECT_EQ(back->role, "serve");
  EXPECT_EQ(r.remaining(), 0u);

  // Truncation at every offset is rejected.
  for (size_t cut = 0; cut < w.payload().size(); ++cut) {
    WireReader rc(std::string_view(w.payload()).substr(0, cut));
    EXPECT_FALSE(DecodeHelloInfo(rc).ok()) << "cut=" << cut;
  }

  // A default HelloInfo is what a v1 server (empty Ping body) maps to.
  EXPECT_EQ(HelloInfo{}.protocol_version, 1u);
  EXPECT_EQ(HelloInfo{}.features, 0u);
}

// ---------------------------------------------------------------------------
// TCP loopback end-to-end.

TEST(ServerTest, LoopbackRoundTripAndGracefulShutdown) {
  ServerOptions options;
  options.serve = SmallServeOptions(2);
  Server server(options);
  const Status st = server.Start();
  if (!st.ok()) {
    GTEST_SKIP() << "cannot bind a loopback socket here: " << st.ToString();
  }
  ASSERT_GT(server.port(), 0);

  ServeClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  ASSERT_TRUE(client.Ping().ok());

  auto info = client.RegisterGenerator("toy", "toy", 5, 0.0);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_GT(info->nodes, 0);

  // Upload path: serialize locally, upload under a new name.
  auto bytes = SerializeHeteroGraph(datasets::MakeToy(7));
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(client.UploadGraph("toy7", *bytes).ok());
  auto corrupt = *bytes;
  corrupt[corrupt.size() - 1] ^= 0x01;
  EXPECT_EQ(client.UploadGraph("bad", corrupt).status().code(),
            StatusCode::kInvalidArgument);

  auto list = client.ListGraphs();
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), 2u);

  CondenseRequest req = ToyRequest(3);
  auto reply = client.Condense(req);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_GT(reply->nodes, 0);
  EXPECT_FALSE(reply->graph_bytes.empty());
  // The wire reply carries the scheduler-assigned request id and the
  // eval-context coalescing outcome (first request on this graph config
  // builds).
  EXPECT_GT(reply->request_id, 0u);
  EXPECT_FALSE(reply->evalctx_hit);
  auto reply2 = client.Condense(req);
  ASSERT_TRUE(reply2.ok());
  EXPECT_GT(reply2->request_id, reply->request_id);
  EXPECT_TRUE(reply2->evalctx_hit);
  // The returned container parses and matches the in-process result.
  ServeService local(SmallServeOptions(1));
  ASSERT_TRUE(local.store().Register("toy", datasets::MakeToy(5)).ok());
  auto local_reply = local.Condense(req);
  ASSERT_TRUE(local_reply.ok());
  EXPECT_EQ(reply->graph_bytes, local_reply->graph_bytes);

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"completed\": 2"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("\"queue_ms\""), std::string::npos) << *stats;
  EXPECT_NE(stats->find("\"exec_ms\""), std::string::npos) << *stats;

  // Admin ops: METRICS is parseable Prometheus text containing the
  // serving counters, HEALTH reports ok, and the flight recorder holds
  // the requests this test just ran.
  auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  const auto samples = obs::ParsePrometheusText(*metrics);
  double completed = 0.0;
  ASSERT_TRUE(obs::FindPromValue(
      samples, "freehgc_serve_requests_completed_total", &completed))
      << *metrics;
  EXPECT_GE(completed, 2.0);
  double exec_count = 0.0;
  ASSERT_TRUE(obs::FindPromValue(samples,
                                 "freehgc_serve_latency_exec_ns_count",
                                 &exec_count));
  EXPECT_GE(exec_count, 2.0);

  auto health = client.Health();
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health->find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(health->find("\"slots\": 2"), std::string::npos) << *health;

  auto flight = client.FlightRecorderDump();
  ASSERT_TRUE(flight.ok());
  EXPECT_NE(flight->find("\"recent\": ["), std::string::npos);
  EXPECT_NE(flight->find("\"graph\": \"toy\""), std::string::npos)
      << *flight;

  ASSERT_TRUE(client.Shutdown().ok());
  server.Wait();  // drains and returns
  EXPECT_EQ(server.service().scheduler_stats().inflight, 0);
  EXPECT_EQ(server.service().scheduler_stats().queue_depth, 0);
}

// Protocol-v2 handshake: the Ping reply identifies the server; cluster
// metadata ops aimed at a serve server are rejected with a pointer to
// the meta service; FetchGraph serializes a resident graph back.
TEST(ServerTest, HelloNegotiationFetchGraphAndClusterOpRejection) {
  ServerOptions options;
  options.serve = SmallServeOptions(1);
  Server server(options);
  const Status st = server.Start();
  if (!st.ok()) {
    GTEST_SKIP() << "cannot bind a loopback socket here: " << st.ToString();
  }

  ServeClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  auto hello = client.Hello();
  ASSERT_TRUE(hello.ok()) << hello.status().ToString();
  EXPECT_EQ(hello->protocol_version, kProtocolVersion);
  EXPECT_EQ(hello->role, "serve");
  EXPECT_NE(hello->features & kFeatureAdminOps, 0u);
  EXPECT_NE(hello->features & kFeatureFetchGraph, 0u);
  EXPECT_EQ(hello->features & kFeatureClusterOps, 0u);

  // Cluster metadata ops do not belong here.
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kRegisterShard));
  auto rejected = client.Call(w.Take());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(rejected.status().message().find("freehgc_meta"),
            std::string::npos)
      << rejected.status().ToString();

  // FetchGraph returns the same container bytes the store would
  // serialize — the replication path's transport.
  ASSERT_TRUE(client.RegisterGenerator("toy", "toy", 5, 0.0).ok());
  auto fetched = client.FetchGraph("toy");
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  auto ref = server.service().store().Get("toy");
  ASSERT_TRUE(ref.ok());
  auto expected = SerializeHeteroGraph(**ref);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(*fetched, *expected);
  EXPECT_EQ(client.FetchGraph("missing").status().code(),
            StatusCode::kNotFound);

  ASSERT_TRUE(client.Shutdown().ok());
  server.Wait();
}

}  // namespace
}  // namespace freehgc::serve
