#include <gtest/gtest.h>

#include "datasets/generator.h"
#include "eval/experiment.h"

namespace freehgc::eval {
namespace {

TEST(AggregateTest, MeanAndStd) {
  const MeanStd m = Aggregate({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(m.mean, 2.0);
  EXPECT_DOUBLE_EQ(m.std, 1.0);
  const MeanStd single = Aggregate({5.0});
  EXPECT_DOUBLE_EQ(single.mean, 5.0);
  EXPECT_DOUBLE_EQ(single.std, 0.0);
  const MeanStd empty = Aggregate({});
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
}

TEST(CellTest, Formats) {
  EXPECT_EQ(Cell({91.274, 0.456}), "91.27 ± 0.46");
}

TEST(MethodNameTest, AllNamed) {
  EXPECT_STREQ(MethodName(MethodKind::kFreeHGC), "FreeHGC");
  EXPECT_STREQ(MethodName(MethodKind::kHGCond), "HGCond");
  EXPECT_STREQ(MethodName(MethodKind::kCoarsening), "Coarsening-HG");
}

TEST(TablePrinterTest, PrintsWithoutCrashing) {
  TablePrinter t({"Dataset", "Acc"});
  t.AddRow({"ACM", "91.3"});
  t.AddRow({"DBLP"});  // short row padded
  t.Print();
}

class RunMethodTest : public ::testing::TestWithParam<MethodKind> {};

TEST_P(RunMethodTest, EndToEndOnToy) {
  const HeteroGraph g = datasets::MakeToy(5);
  hgnn::PropagateOptions popts;
  popts.max_hops = 2;
  popts.max_paths = 6;
  const hgnn::EvalContext ctx = hgnn::BuildEvalContext(g, popts);
  RunOptions run;
  run.ratio = 0.2;
  run.seed = 1;
  run.gm.outer_iters = 2;
  run.gm.inner_iters = 2;
  run.gm.relay_inits = 2;
  hgnn::HgnnConfig cfg;
  cfg.hidden = 8;
  cfg.epochs = 30;
  auto res = RunMethod(ctx, GetParam(), run, cfg);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_FALSE(res->oom);
  EXPECT_GE(res->accuracy, 0.0f);
  EXPECT_LE(res->accuracy, 100.0f);
  EXPECT_GT(res->storage_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, RunMethodTest,
    ::testing::Values(MethodKind::kRandom, MethodKind::kHerding,
                      MethodKind::kKCenter, MethodKind::kCoarsening,
                      MethodKind::kGCond, MethodKind::kHGCond,
                      MethodKind::kFreeHGC),
    [](const auto& info) {
      std::string n = MethodName(info.param);
      std::string out;
      for (char c : n) {
        if (c != '-') out += c;
      }
      return out;
    });

TEST(RunMethodSeedsTest, AggregatesOverSeeds) {
  const HeteroGraph g = datasets::MakeToy(7);
  hgnn::PropagateOptions popts;
  popts.max_hops = 2;
  const hgnn::EvalContext ctx = hgnn::BuildEvalContext(g, popts);
  RunOptions run;
  run.ratio = 0.2;
  hgnn::HgnnConfig cfg;
  cfg.hidden = 8;
  cfg.epochs = 20;
  const AggregatedRun agg =
      RunMethodSeeds(ctx, MethodKind::kRandom, run, cfg, {1, 2, 3});
  EXPECT_FALSE(agg.oom);
  EXPECT_GE(agg.accuracy.mean, 0.0);
  EXPECT_GE(agg.accuracy.std, 0.0);
}

}  // namespace
}  // namespace freehgc::eval
