#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/freehgc.h"
#include "core/other_types.h"
#include "core/selection_util.h"
#include "core/target_selection.h"
#include "datasets/generator.h"
#include "metapath/metapath.h"

namespace freehgc::core {
namespace {

CsrMatrix Adj(int32_t rows, int32_t cols, std::vector<CooEntry> e) {
  auto r = CsrMatrix::FromCoo(rows, cols, std::move(e));
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

// --- selection_util ---------------------------------------------------------

TEST(SelectionUtilTest, RandomSelectBudgetAndDeterminism) {
  std::vector<int32_t> pool = {10, 20, 30, 40, 50};
  const auto a = RandomSelect(pool, 3, 1);
  const auto b = RandomSelect(pool, 3, 1);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 3u);
  for (int32_t v : a) EXPECT_TRUE(std::count(pool.begin(), pool.end(), v));
  EXPECT_EQ(RandomSelect(pool, 99, 1).size(), 5u);
  EXPECT_TRUE(RandomSelect(pool, 0, 1).empty());
}

TEST(SelectionUtilTest, HerdingTracksMean) {
  // Three tight clusters; herding with budget 3 should pick one point per
  // cluster region to track the global mean... at minimum, selections are
  // unique pool members and deterministic.
  Matrix f(6, 2);
  const float coords[6][2] = {{0, 0}, {0.1f, 0}, {10, 0},
                              {10.1f, 0}, {5, 8}, {5.1f, 8}};
  for (int i = 0; i < 6; ++i) {
    f.At(i, 0) = coords[i][0];
    f.At(i, 1) = coords[i][1];
  }
  std::vector<int32_t> pool = {0, 1, 2, 3, 4, 5};
  const auto sel = HerdingSelect(f, pool, 4);
  EXPECT_EQ(sel.size(), 4u);
  std::set<int32_t> uniq(sel.begin(), sel.end());
  EXPECT_EQ(uniq.size(), 4u);
  // The running mean of the selection approximates the pool mean.
  const auto pool_mean = dense::ColumnMean(f, pool);
  const auto sel_mean = dense::ColumnMean(f, sel);
  EXPECT_NEAR(sel_mean[0], pool_mean[0], 2.5f);
  EXPECT_NEAR(sel_mean[1], pool_mean[1], 2.5f);
}

TEST(SelectionUtilTest, KCenterSpreadsOut) {
  // Points on a line; k-center with k=2 must pick near-opposite ends.
  Matrix f(5, 1);
  for (int i = 0; i < 5; ++i) f.At(i, 0) = static_cast<float>(i);
  std::vector<int32_t> pool = {0, 1, 2, 3, 4};
  const auto sel = KCenterSelect(f, pool, 2, 3);
  ASSERT_EQ(sel.size(), 2u);
  const float span = std::fabs(f.At(sel[0], 0) - f.At(sel[1], 0));
  EXPECT_GE(span, 2.0f);
}

TEST(SelectionUtilTest, PerClassBudgetProportional) {
  // 60 of class 0, 30 of class 1, 10 of class 2; budget 10 -> 6/3/1.
  std::vector<int32_t> labels(100);
  std::vector<int32_t> pool(100);
  for (int i = 0; i < 100; ++i) {
    pool[i] = i;
    labels[i] = i < 60 ? 0 : (i < 90 ? 1 : 2);
  }
  const auto b = PerClassBudget(labels, pool, 3, 10);
  EXPECT_EQ(b[0], 6);
  EXPECT_EQ(b[1], 3);
  EXPECT_EQ(b[2], 1);
  int32_t total = b[0] + b[1] + b[2];
  EXPECT_EQ(total, 10);
}

TEST(SelectionUtilTest, PerClassBudgetGivesEveryClassOne) {
  std::vector<int32_t> labels = {0, 0, 0, 0, 0, 0, 0, 0, 0, 1};
  std::vector<int32_t> pool = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto b = PerClassBudget(labels, pool, 2, 2);
  EXPECT_GE(b[1], 1);  // minority class represented
}

TEST(SelectionUtilTest, PoolOfClass) {
  std::vector<int32_t> labels = {0, 1, 0, 1};
  std::vector<int32_t> pool = {0, 1, 2, 3};
  EXPECT_EQ(PoolOfClass(labels, pool, 1), (std::vector<int32_t>{1, 3}));
}

// --- greedy coverage ---------------------------------------------------------

TEST(GreedyCoverageTest, PrefersLargeUncoveredRows) {
  // Row 0 covers {0,1,2}; row 1 covers {0,1}; row 2 covers {3}.
  CsrMatrix adj = Adj(3, 4, {{0, 0, 1}, {0, 1, 1}, {0, 2, 1},
                             {1, 0, 1}, {1, 1, 1},
                             {2, 3, 1}});
  std::vector<int32_t> pool = {0, 1, 2};
  const auto sel = GreedyCoverageSelect(adj, pool, 2, nullptr,
                                        /*use_coverage=*/true);
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_EQ(sel[0], 0);  // largest row first
  EXPECT_EQ(sel[1], 2);  // row 1 is fully covered; row 2 adds a new column
}

TEST(GreedyCoverageTest, DiversityBreaksTies) {
  // Equal coverage rows; diversity should pick the high-diversity node.
  CsrMatrix adj = Adj(2, 2, {{0, 0, 1}, {1, 1, 1}});
  std::vector<float> div = {0.1f, 0.9f};
  const auto sel =
      GreedyCoverageSelect(adj, {0, 1}, 1, &div, /*use_coverage=*/true);
  ASSERT_EQ(sel.size(), 1u);
  EXPECT_EQ(sel[0], 1);
}

TEST(GreedyCoverageTest, MarginalGainsAreNonIncreasing) {
  // Submodularity: recorded marginal gains must be non-increasing when the
  // modular diversity term is off.
  const HeteroGraph g = datasets::MakeToy(21);
  MetaPathOptions mp;
  mp.max_hops = 2;
  const auto paths = EnumerateMetaPaths(g, g.target_type(), mp);
  ASSERT_FALSE(paths.empty());
  const CsrMatrix adj = ComposeAdjacency(g, paths.back());
  std::vector<int32_t> pool(static_cast<size_t>(adj.rows()));
  for (int32_t i = 0; i < adj.rows(); ++i) pool[static_cast<size_t>(i)] = i;
  std::vector<double> gains;
  GreedyCoverageSelect(adj, pool, 20, nullptr, true, &gains);
  for (size_t i = 1; i < gains.size(); ++i) {
    EXPECT_LE(gains[i], gains[i - 1] + 1e-9);
  }
}

TEST(GreedyCoverageTest, BudgetClamps) {
  CsrMatrix adj = Adj(2, 2, {{0, 0, 1}});
  EXPECT_EQ(GreedyCoverageSelect(adj, {0, 1}, 10, nullptr, true).size(), 2u);
  EXPECT_TRUE(GreedyCoverageSelect(adj, {}, 3, nullptr, true).empty());
}

// --- target selection ---------------------------------------------------------

class TargetSelectionRatioTest : public ::testing::TestWithParam<double> {};

TEST_P(TargetSelectionRatioTest, BudgetAndClassBalanceHold) {
  const HeteroGraph g = datasets::MakeToy(31);
  MetaPathOptions mp;
  mp.max_hops = 2;
  const auto paths = EnumerateMetaPaths(g, g.target_type(), mp);
  const double ratio = GetParam();
  const int32_t budget = std::max<int32_t>(
      g.num_classes(),
      static_cast<int32_t>(ratio * g.NodeCount(g.target_type())));
  TargetSelectionOptions opts;
  const auto sel = CondenseTargetNodes(g, paths, budget, opts);
  EXPECT_LE(static_cast<int32_t>(sel.size()), budget + g.num_classes());
  EXPECT_GE(static_cast<int32_t>(sel.size()), std::min<int32_t>(
      budget, static_cast<int32_t>(g.train_index().size())) - g.num_classes());
  // Unique, in train pool.
  std::set<int32_t> uniq(sel.begin(), sel.end());
  EXPECT_EQ(uniq.size(), sel.size());
  std::set<int32_t> train(g.train_index().begin(), g.train_index().end());
  for (int32_t v : sel) EXPECT_TRUE(train.count(v)) << v;
  // Every class represented.
  std::set<int32_t> classes;
  for (int32_t v : sel) classes.insert(g.labels()[static_cast<size_t>(v)]);
  EXPECT_EQ(static_cast<int32_t>(classes.size()), g.num_classes());
}

INSTANTIATE_TEST_SUITE_P(Ratios, TargetSelectionRatioTest,
                         ::testing::Values(0.1, 0.2, 0.4));

TEST(TargetSelectionTest, DeterministicAndAblationSwitchesChangeResult) {
  const HeteroGraph g = datasets::MakeAcm(3, /*scale=*/0.1);
  MetaPathOptions mp;
  mp.max_hops = 2;
  mp.max_paths = 8;
  const auto paths = EnumerateMetaPaths(g, g.target_type(), mp);
  TargetSelectionOptions opts;
  const auto a = CondenseTargetNodes(g, paths, 20, opts);
  const auto b = CondenseTargetNodes(g, paths, 20, opts);
  EXPECT_EQ(a, b);
  TargetSelectionOptions no_rf = opts;
  no_rf.use_receptive_field = false;
  TargetSelectionOptions no_jac = opts;
  no_jac.use_jaccard = false;
  const auto c = CondenseTargetNodes(g, paths, 20, no_rf);
  const auto d = CondenseTargetNodes(g, paths, 20, no_jac);
  EXPECT_TRUE(a != c || a != d);  // switches have an effect
}

TEST(TargetSelectionTest, ScoresExposedForInterpretability) {
  const HeteroGraph g = datasets::MakeToy(33);
  MetaPathOptions mp;
  mp.max_hops = 2;
  const auto paths = EnumerateMetaPaths(g, g.target_type(), mp);
  std::vector<double> scores;
  const auto sel = CondenseTargetNodes(g, paths, 10, {}, &scores);
  EXPECT_EQ(scores.size(),
            static_cast<size_t>(g.NodeCount(g.target_type())));
  // Selected nodes carry positive scores.
  for (int32_t v : sel) EXPECT_GT(scores[static_cast<size_t>(v)], 0.0);
}

// --- NIM ----------------------------------------------------------------------

TEST(NimTest, SelectsFathersConnectedToSelectedTargets) {
  // Targets 0,1 connect to father 0; target 2 to father 1; father 2 is
  // isolated. Selecting targets {0,1} must rank father 0 first, father 2
  // last.
  HeteroGraph g;
  const TypeId t = g.AddNodeType("t", 3).value();
  const TypeId f = g.AddNodeType("f", 3).value();
  ASSERT_TRUE(g.AddRelation("tf", t, f,
                            Adj(3, 3, {{0, 0, 1}, {1, 0, 1}, {2, 1, 1}}))
                  .ok());
  g.EnsureReverseRelations();
  Matrix x(3, 2);
  ASSERT_TRUE(g.SetFeatures(t, x).ok());
  ASSERT_TRUE(g.SetFeatures(f, x).ok());
  ASSERT_TRUE(g.SetTarget(t, {0, 1, 0}, 2).ok());
  ASSERT_TRUE(g.SetSplit({0, 1, 2}, {}, {}).ok());

  MetaPathOptions mp;
  mp.max_hops = 1;
  const auto paths = EnumerateMetaPaths(g, t, mp);
  NimOptions nopts;
  const auto sel = CondenseFatherType(g, f, FilterByEndType(paths, f),
                                      {0, 1}, 1, nopts);
  ASSERT_EQ(sel.size(), 1u);
  EXPECT_EQ(sel[0], 0);
}

TEST(NimTest, BudgetZeroAndClamping) {
  const HeteroGraph g = datasets::MakeToy(41);
  const TypeId father = g.TypeByName("f").value();
  MetaPathOptions mp;
  mp.max_hops = 2;
  const auto paths = EnumerateMetaPaths(g, g.target_type(), mp);
  NimOptions nopts;
  EXPECT_TRUE(CondenseFatherType(g, father, FilterByEndType(paths, father),
                                 g.train_index(), 0, nopts)
                  .empty());
  const auto all = CondenseFatherType(g, father,
                                      FilterByEndType(paths, father),
                                      g.train_index(), 10000, nopts);
  EXPECT_EQ(static_cast<int32_t>(all.size()), g.NodeCount(father));
}

// --- ILM ----------------------------------------------------------------------

TEST(IlmTest, SynthesizesMeanFeatures) {
  // Father 0 has leaf neighbours {0, 1}; their mean feature must be the
  // hyper-node feature.
  HeteroGraph g;
  const TypeId t = g.AddNodeType("t", 1).value();
  const TypeId f = g.AddNodeType("f", 2).value();
  const TypeId l = g.AddNodeType("l", 3).value();
  ASSERT_TRUE(g.AddRelation("tf", t, f, Adj(1, 2, {{0, 0, 1}})).ok());
  ASSERT_TRUE(g.AddRelation("fl", f, l,
                            Adj(2, 3, {{0, 0, 1}, {0, 1, 1}, {1, 2, 1}}))
                  .ok());
  g.EnsureReverseRelations();
  Matrix xl(3, 2);
  xl.At(0, 0) = 2.0f;
  xl.At(1, 0) = 4.0f;
  xl.At(2, 0) = 100.0f;
  ASSERT_TRUE(g.SetFeatures(l, xl).ok());
  ASSERT_TRUE(g.SetFeatures(t, Matrix(1, 2)).ok());
  ASSERT_TRUE(g.SetFeatures(f, Matrix(2, 2)).ok());
  ASSERT_TRUE(g.SetTarget(t, {0}, 2).ok());

  std::vector<int32_t> kept_f = {0};
  const LeafSynthesis synth =
      SynthesizeLeafType(g, l, {{f, &kept_f}}, /*budget=*/5);
  ASSERT_EQ(synth.members.size(), 1u);
  EXPECT_EQ(synth.members[0], (std::vector<int32_t>{0, 1}));
  EXPECT_FLOAT_EQ(synth.features.At(0, 0), 3.0f);  // mean(2, 4)
}

TEST(IlmTest, MergesSmallestToBudget) {
  // Three fathers each with a distinct single leaf; budget 2 forces one
  // merge of the smallest hyper-nodes.
  HeteroGraph g;
  const TypeId t = g.AddNodeType("t", 1).value();
  const TypeId f = g.AddNodeType("f", 3).value();
  const TypeId l = g.AddNodeType("l", 3).value();
  ASSERT_TRUE(g.AddRelation("tf", t, f, Adj(1, 3, {{0, 0, 1}})).ok());
  ASSERT_TRUE(g.AddRelation("fl", f, l,
                            Adj(3, 3, {{0, 0, 1}, {1, 1, 1}, {2, 2, 1}}))
                  .ok());
  g.EnsureReverseRelations();
  ASSERT_TRUE(g.SetFeatures(l, Matrix(3, 2)).ok());
  ASSERT_TRUE(g.SetFeatures(t, Matrix(1, 2)).ok());
  ASSERT_TRUE(g.SetFeatures(f, Matrix(3, 2)).ok());
  ASSERT_TRUE(g.SetTarget(t, {0}, 2).ok());

  std::vector<int32_t> kept_f = {0, 1, 2};
  const LeafSynthesis synth =
      SynthesizeLeafType(g, l, {{f, &kept_f}}, /*budget=*/2);
  EXPECT_EQ(synth.members.size(), 2u);
  size_t total_members = 0;
  for (const auto& m : synth.members) total_members += m.size();
  EXPECT_EQ(total_members, 3u);
}

TEST(IlmTest, UnreachableLeafFallsBackToDegree) {
  const HeteroGraph g = datasets::MakeToy(43);
  const TypeId l = g.TypeByName("l").value();
  // No kept fathers at all.
  const LeafSynthesis synth = SynthesizeLeafType(g, l, {}, /*budget=*/3);
  EXPECT_LE(synth.members.size(), 3u);
  EXPECT_GT(synth.members.size(), 0u);
}

// --- assembly ------------------------------------------------------------------

TEST(AssembleTest, KeptAndSynthesizedTypesCombine) {
  const HeteroGraph g = datasets::MakeToy(51);
  std::vector<TypeMapping> mappings(3);
  // target: keep first 10; father: keep first 5; leaf: two hyper-nodes.
  for (int32_t v = 0; v < 10; ++v) mappings[0].keep.push_back(v);
  for (int32_t v = 0; v < 5; ++v) mappings[1].keep.push_back(v);
  mappings[2].synthesized = true;
  mappings[2].members = {{0, 1, 2}, {3, 4}};
  mappings[2].synthetic_features = Matrix(2, g.Features(2).cols());
  auto out = AssembleCondensedGraph(g, mappings);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->NodeCount(0), 10);
  EXPECT_EQ(out->NodeCount(1), 5);
  EXPECT_EQ(out->NodeCount(2), 2);
  EXPECT_TRUE(out->Validate().ok());
  EXPECT_EQ(out->train_index().size(), 10u);
}

TEST(AssembleTest, MembershipRoutesEdges) {
  // father-leaf edge (f0 -> l1) must appear as (f0 -> hyper containing l1).
  HeteroGraph g;
  const TypeId t = g.AddNodeType("t", 1).value();
  const TypeId f = g.AddNodeType("f", 1).value();
  const TypeId l = g.AddNodeType("l", 2).value();
  ASSERT_TRUE(g.AddRelation("tf", t, f, Adj(1, 1, {{0, 0, 1}})).ok());
  ASSERT_TRUE(g.AddRelation("fl", f, l, Adj(1, 2, {{0, 1, 1}})).ok());
  ASSERT_TRUE(g.SetFeatures(l, Matrix(2, 2)).ok());
  ASSERT_TRUE(g.SetTarget(t, {0}, 2).ok());
  std::vector<TypeMapping> mappings(3);
  mappings[0].keep = {0};
  mappings[1].keep = {0};
  mappings[2].synthesized = true;
  mappings[2].members = {{1}};
  mappings[2].synthetic_features = Matrix(1, 2);
  auto out = AssembleCondensedGraph(g, mappings);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->relation(1).adj.Contains(0, 0));
}

TEST(AssembleTest, RejectsInvalidMappings) {
  const HeteroGraph g = datasets::MakeToy(53);
  // Wrong arity.
  EXPECT_FALSE(AssembleCondensedGraph(g, {}).ok());
  // Synthesized target type forbidden.
  std::vector<TypeMapping> mappings(3);
  mappings[0].synthesized = true;
  mappings[0].members = {{0}};
  mappings[0].synthetic_features = Matrix(1, g.Features(0).cols());
  mappings[1].keep = {0};
  mappings[2].keep = {0};
  EXPECT_FALSE(AssembleCondensedGraph(g, mappings).ok());
  // Duplicate keep id.
  std::vector<TypeMapping> dup(3);
  dup[0].keep = {0, 0};
  dup[1].keep = {0};
  dup[2].keep = {0};
  EXPECT_FALSE(AssembleCondensedGraph(g, dup).ok());
}

TEST(AssembleTest, EmptyKeepListYieldsEmptyType) {
  // A non-target type may legitimately end up with zero kept nodes (tiny
  // budgets); assembly must produce an empty type with empty incident
  // relations rather than fail.
  const HeteroGraph g = datasets::MakeToy(57);
  std::vector<TypeMapping> mappings(3);
  for (int32_t v = 0; v < 10; ++v) mappings[0].keep.push_back(v);
  mappings[1].keep = {};  // father type: nothing kept
  mappings[2].keep = {0, 1};
  auto out = AssembleCondensedGraph(g, mappings);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->Validate().ok());
  EXPECT_EQ(out->NodeCount(1), 0);
  for (RelationId r = 0; r < out->NumRelations(); ++r) {
    if (out->relation(r).src_type == 1 || out->relation(r).dst_type == 1) {
      EXPECT_EQ(out->relation(r).adj.nnz(), 0) << out->relation(r).name;
    }
  }
}

TEST(AssembleTest, AllNonTargetTypesSynthesized) {
  // Every non-target type replaced by hyper-nodes at once (the ILM path
  // applied schema-wide); only the target keeps original ids.
  const HeteroGraph g = datasets::MakeToy(59);
  std::vector<TypeMapping> mappings(3);
  for (int32_t v = 0; v < 8; ++v) mappings[0].keep.push_back(v);
  for (TypeId t : {TypeId{1}, TypeId{2}}) {
    auto& m = mappings[static_cast<size_t>(t)];
    m.synthesized = true;
    const int32_t n = g.NodeCount(t);
    std::vector<int32_t> first, second;
    for (int32_t v = 0; v < n; ++v) {
      (v % 2 == 0 ? first : second).push_back(v);
    }
    m.members = {first, second};
    m.synthetic_features = Matrix(2, g.Features(t).cols());
  }
  auto out = AssembleCondensedGraph(g, mappings);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->Validate().ok());
  EXPECT_EQ(out->NodeCount(0), 8);
  EXPECT_EQ(out->NodeCount(1), 2);
  EXPECT_EQ(out->NodeCount(2), 2);
}

TEST(AssembleTest, ParallelEdgesCollapseIntoSummedWeights) {
  // f0 connects to l0 (weight 2) and l1 (weight 3); both leaves land in
  // the same hyper-node, so the routed edges become parallel and must
  // collapse into one edge of summed weight 5 (Eq. 15's reverse-edge
  // construction).
  HeteroGraph g;
  const TypeId t = g.AddNodeType("t", 1).value();
  const TypeId f = g.AddNodeType("f", 1).value();
  const TypeId l = g.AddNodeType("l", 2).value();
  ASSERT_TRUE(g.AddRelation("tf", t, f, Adj(1, 1, {{0, 0, 1}})).ok());
  ASSERT_TRUE(
      g.AddRelation("fl", f, l, Adj(1, 2, {{0, 0, 2}, {0, 1, 3}})).ok());
  ASSERT_TRUE(g.SetFeatures(l, Matrix(2, 2)).ok());
  ASSERT_TRUE(g.SetTarget(t, {0}, 2).ok());
  std::vector<TypeMapping> mappings(3);
  mappings[0].keep = {0};
  mappings[1].keep = {0};
  mappings[2].synthesized = true;
  mappings[2].members = {{0, 1}};
  mappings[2].synthetic_features = Matrix(1, 2);
  auto out = AssembleCondensedGraph(g, mappings);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const CsrMatrix& fl = out->relation(1).adj;
  ASSERT_EQ(fl.nnz(), 1);
  EXPECT_EQ(fl.RowIndices(0)[0], 0);
  EXPECT_FLOAT_EQ(fl.RowValues(0)[0], 5.0f);
}

// --- full pipeline ---------------------------------------------------------------

class CondenseRatioTest : public ::testing::TestWithParam<double> {};

TEST_P(CondenseRatioTest, InvariantsHold) {
  const HeteroGraph g = datasets::MakeDblp(61, /*scale=*/0.1);
  FreeHgcOptions opts;
  opts.ratio = GetParam();
  opts.max_hops = 2;
  opts.max_paths = 10;
  auto res = Condense(g, opts);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->graph.Validate().ok());
  EXPECT_EQ(res->graph.NumNodeTypes(), g.NumNodeTypes());
  EXPECT_EQ(res->graph.NumRelations(), g.NumRelations());
  // Node budget respected within rounding (each type <= ratio*N + slack).
  for (TypeId t = 0; t < g.NumNodeTypes(); ++t) {
    EXPECT_LE(res->graph.NodeCount(t),
              static_cast<int32_t>(opts.ratio * g.NodeCount(t)) +
                  g.num_classes() + 1)
        << g.TypeName(t);
  }
  EXPECT_GT(res->seconds, 0.0);
  // Selected targets are valid training nodes.
  std::set<int32_t> train(g.train_index().begin(), g.train_index().end());
  for (int32_t v : res->selected_target) EXPECT_TRUE(train.count(v));
}

INSTANTIATE_TEST_SUITE_P(Ratios, CondenseRatioTest,
                         ::testing::Values(0.012, 0.024, 0.048, 0.096));

TEST(CondenseTest, RejectsBadOptions) {
  const HeteroGraph g = datasets::MakeToy(71);
  FreeHgcOptions opts;
  opts.ratio = 0.0;
  EXPECT_FALSE(Condense(g, opts).ok());
  opts.ratio = 1.5;
  EXPECT_FALSE(Condense(g, opts).ok());
  HeteroGraph no_target;
  no_target.AddNodeType("x", 3).value();
  opts.ratio = 0.1;
  EXPECT_FALSE(Condense(no_target, opts).ok());
}

TEST(CondenseTest, DeterministicUnderSeed) {
  const HeteroGraph g = datasets::MakeToy(73);
  FreeHgcOptions opts;
  opts.ratio = 0.2;
  opts.seed = 5;
  auto a = Condense(g, opts);
  auto b = Condense(g, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->selected_target, b->selected_target);
  EXPECT_EQ(a->graph.TotalNodes(), b->graph.TotalNodes());
  EXPECT_EQ(a->graph.TotalEdges(), b->graph.TotalEdges());
}

TEST(CondenseTest, AblationStrategiesRun) {
  const HeteroGraph g = datasets::MakeDblp(75, /*scale=*/0.05);
  for (auto ts : {TargetStrategy::kCriterion, TargetStrategy::kHerding,
                  TargetStrategy::kRandom}) {
    for (auto fs : {FatherStrategy::kNim, FatherStrategy::kHerding}) {
      for (auto ls : {LeafStrategy::kIlm, LeafStrategy::kHerding}) {
        FreeHgcOptions opts;
        opts.ratio = 0.05;
        opts.max_paths = 6;
        opts.target_strategy = ts;
        opts.father_strategy = fs;
        opts.leaf_strategy = ls;
        auto res = Condense(g, opts);
        ASSERT_TRUE(res.ok()) << res.status().ToString();
        EXPECT_TRUE(res->graph.Validate().ok());
      }
    }
  }
}

}  // namespace
}  // namespace freehgc::core
