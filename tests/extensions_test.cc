// Tests for the paper's extension points: alternative NIM scorers
// (Section IV-C's "NIM can be replaced by ...") and random-walk candidate
// pruning (Section IV-B's scalability note).
#include <gtest/gtest.h>

#include <set>

#include "core/freehgc.h"
#include "core/other_types.h"
#include "core/target_selection.h"
#include "datasets/generator.h"
#include "metapath/metapath.h"

namespace freehgc::core {
namespace {

class NimScorerTest : public ::testing::TestWithParam<NimScorer> {};

TEST_P(NimScorerTest, ProducesValidSelection) {
  const HeteroGraph g = datasets::MakeDblp(3, /*scale=*/0.05);
  const auto roles = g.ClassifySchema();
  TypeId father = -1;
  for (TypeId t = 0; t < g.NumNodeTypes(); ++t) {
    if (roles[static_cast<size_t>(t)] == TypeRole::kFather) father = t;
  }
  ASSERT_GE(father, 0);
  MetaPathOptions mp;
  mp.max_hops = 2;
  mp.max_paths = 6;
  const auto paths = EnumerateMetaPaths(g, g.target_type(), mp);
  NimOptions opts;
  opts.scorer = GetParam();
  const auto sel = CondenseFatherType(g, father,
                                      FilterByEndType(paths, father),
                                      g.train_index(), 20, opts);
  EXPECT_EQ(sel.size(), 20u);
  std::set<int32_t> uniq(sel.begin(), sel.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (int32_t v : sel) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, g.NodeCount(father));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScorers, NimScorerTest,
    ::testing::Values(NimScorer::kPprPowerIteration, NimScorer::kPprPush,
                      NimScorer::kDegree, NimScorer::kCloseness,
                      NimScorer::kBetweenness, NimScorer::kHubs,
                      NimScorer::kAuthorities),
    [](const auto& info) {
      std::string n = NimScorerName(info.param);
      std::string out;
      for (char c : n) out += (c == '-' ? '_' : c);
      return out;
    });

TEST(NimScorerTest, PushApproximatesPowerIteration) {
  // The two PPR variants should mostly agree on which fathers matter.
  const HeteroGraph g = datasets::MakeDblp(5, /*scale=*/0.05);
  const TypeId father = g.TypeByName("paper").value();
  MetaPathOptions mp;
  mp.max_hops = 2;
  mp.max_paths = 6;
  const auto paths = EnumerateMetaPaths(g, g.target_type(), mp);
  NimOptions a;
  a.scorer = NimScorer::kPprPowerIteration;
  NimOptions b;
  b.scorer = NimScorer::kPprPush;
  b.push_epsilon = 1e-6f;
  const auto sa = CondenseFatherType(g, father,
                                     FilterByEndType(paths, father),
                                     g.train_index(), 30, a);
  const auto sb = CondenseFatherType(g, father,
                                     FilterByEndType(paths, father),
                                     g.train_index(), 30, b);
  std::set<int32_t> inter;
  std::set<int32_t> sa_set(sa.begin(), sa.end());
  for (int32_t v : sb) {
    if (sa_set.count(v)) inter.insert(v);
  }
  // Note: sym-normalized power iteration vs row-normalized push differ in
  // weighting, so require substantial but not perfect overlap.
  EXPECT_GE(inter.size(), 15u);
}

TEST(WalkPruneTest, KeepsHighInfluenceNodes) {
  // Node 0 reaches 4 columns; nodes 1..4 reach one each. Pruning half the
  // pool must keep node 0.
  std::vector<CooEntry> e;
  for (int32_t c = 0; c < 4; ++c) e.push_back({0, c, 1.0f});
  for (int32_t v = 1; v < 5; ++v) e.push_back({v, v - 1, 1.0f});
  auto adj = CsrMatrix::FromCoo(5, 4, std::move(e));
  ASSERT_TRUE(adj.ok());
  const auto kept = PruneUninfluentialByWalks(*adj, {0, 1, 2, 3, 4}, 0.5,
                                              /*walks=*/8, /*length=*/2, 1);
  EXPECT_LE(kept.size(), 3u);
  EXPECT_TRUE(std::count(kept.begin(), kept.end(), 0) > 0);
}

TEST(WalkPruneTest, ZeroFractionIsIdentity) {
  auto adj = CsrMatrix::FromCoo(3, 3, {{0, 0, 1.0f}});
  ASSERT_TRUE(adj.ok());
  const std::vector<int32_t> pool = {0, 1, 2};
  EXPECT_EQ(PruneUninfluentialByWalks(*adj, pool, 0.0, 4, 2, 1), pool);
}

TEST(WalkPruneTest, EndToEndSelectionStillValid) {
  const HeteroGraph g = datasets::MakeAcm(7, /*scale=*/0.1);
  FreeHgcOptions opts;
  opts.ratio = 0.05;
  opts.max_paths = 8;
  opts.target.walk_prune_fraction = 0.5;
  auto res = Condense(g, opts);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->graph.Validate().ok());
  EXPECT_GT(res->selected_target.size(), 0u);
}

}  // namespace
}  // namespace freehgc::core
