#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/crc32.h"
#include "core/freehgc.h"
#include "datasets/generator.h"
#include "graph/serialize.h"

namespace freehgc {
namespace {

std::string TempPath(const std::string& name) {
  return std::string("/tmp/freehgc_test_") + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

void ExpectGraphsEqual(const HeteroGraph& a, const HeteroGraph& b) {
  ASSERT_EQ(a.NumNodeTypes(), b.NumNodeTypes());
  ASSERT_EQ(a.NumRelations(), b.NumRelations());
  for (TypeId t = 0; t < a.NumNodeTypes(); ++t) {
    EXPECT_EQ(a.TypeName(t), b.TypeName(t));
    EXPECT_EQ(a.NodeCount(t), b.NodeCount(t));
    EXPECT_EQ(a.Features(t), b.Features(t));
  }
  for (RelationId r = 0; r < a.NumRelations(); ++r) {
    EXPECT_EQ(a.relation(r).name, b.relation(r).name);
    EXPECT_EQ(a.relation(r).src_type, b.relation(r).src_type);
    EXPECT_EQ(a.relation(r).dst_type, b.relation(r).dst_type);
    EXPECT_EQ(a.relation(r).adj, b.relation(r).adj);
  }
  EXPECT_EQ(a.target_type(), b.target_type());
  EXPECT_EQ(a.labels(), b.labels());
  EXPECT_EQ(a.num_classes(), b.num_classes());
  EXPECT_EQ(a.train_index(), b.train_index());
  EXPECT_EQ(a.val_index(), b.val_index());
  EXPECT_EQ(a.test_index(), b.test_index());
  EXPECT_EQ(a.ContentFingerprint(), b.ContentFingerprint());
}

TEST(SerializeTest, RoundTripsToyGraph) {
  const HeteroGraph g = datasets::MakeToy(5);
  const std::string path = TempPath("toy.fhgc");
  ASSERT_TRUE(SaveHeteroGraph(g, path).ok());
  auto loaded = LoadHeteroGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumNodeTypes(), g.NumNodeTypes());
  EXPECT_EQ(loaded->NumRelations(), g.NumRelations());
  EXPECT_EQ(loaded->TotalNodes(), g.TotalNodes());
  EXPECT_EQ(loaded->TotalEdges(), g.TotalEdges());
  EXPECT_EQ(loaded->labels(), g.labels());
  EXPECT_EQ(loaded->train_index(), g.train_index());
  EXPECT_EQ(loaded->test_index(), g.test_index());
  for (TypeId t = 0; t < g.NumNodeTypes(); ++t) {
    EXPECT_EQ(loaded->TypeName(t), g.TypeName(t));
    EXPECT_EQ(loaded->Features(t), g.Features(t));
  }
  for (RelationId r = 0; r < g.NumRelations(); ++r) {
    EXPECT_EQ(loaded->relation(r).adj, g.relation(r).adj);
    EXPECT_EQ(loaded->relation(r).name, g.relation(r).name);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, RoundTripsCondensedGraph) {
  const HeteroGraph g = datasets::MakeDblp(7, /*scale=*/0.05);
  core::FreeHgcOptions opts;
  opts.ratio = 0.1;
  opts.max_paths = 6;
  auto cond = core::Condense(g, opts);
  ASSERT_TRUE(cond.ok());
  const std::string path = TempPath("condensed.fhgc");
  ASSERT_TRUE(SaveHeteroGraph(cond->graph, path).ok());
  auto loaded = LoadHeteroGraph(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->TotalNodes(), cond->graph.TotalNodes());
  EXPECT_EQ(loaded->TotalEdges(), cond->graph.TotalEdges());
  EXPECT_TRUE(loaded->Validate().ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsGarbageAndMissingFiles) {
  EXPECT_EQ(LoadHeteroGraph("/tmp/definitely_missing.fhgc").status().code(),
            StatusCode::kNotFound);
  const std::string path = TempPath("garbage.fhgc");
  {
    std::ofstream out(path);
    out << "this is not a graph";
  }
  auto res = LoadHeteroGraph(path);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsTruncatedFile) {
  const HeteroGraph g = datasets::MakeToy(9);
  const std::string path = TempPath("trunc.fhgc");
  ASSERT_TRUE(SaveHeteroGraph(g, path).ok());
  // Truncate to half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  EXPECT_FALSE(LoadHeteroGraph(path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, InMemoryRoundTrip) {
  const HeteroGraph g = datasets::MakeToy(11);
  auto bytes = SerializeHeteroGraph(g);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  auto back = DeserializeHeteroGraph(*bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->TotalNodes(), g.TotalNodes());
  EXPECT_EQ(back->TotalEdges(), g.TotalEdges());
  EXPECT_EQ(back->ContentFingerprint(), g.ContentFingerprint());
}

TEST(SerializeTest, RejectsBadMagic) {
  const HeteroGraph g = datasets::MakeToy(11);
  auto bytes = SerializeHeteroGraph(g);
  ASSERT_TRUE(bytes.ok());
  std::string corrupt = *bytes;
  corrupt[0] = 'X';
  auto res = DeserializeHeteroGraph(corrupt);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(res.status().message().find("not a FreeHGC graph"),
            std::string::npos);
}

TEST(SerializeTest, RejectsTruncationAtEveryRegion) {
  const HeteroGraph g = datasets::MakeToy(11);
  auto bytes = SerializeHeteroGraph(g);
  ASSERT_TRUE(bytes.ok());
  const std::string& full = *bytes;
  // Header is magic(4) + version(4) + body size(8) + crc(4) = 20 bytes.
  const size_t cuts[] = {0, 3, 4, 7, 8, 15, 19, 20, full.size() / 2,
                         full.size() - 1};
  for (size_t cut : cuts) {
    ASSERT_LT(cut, full.size());
    auto res = DeserializeHeteroGraph(std::string_view(full).substr(0, cut));
    EXPECT_FALSE(res.ok()) << "truncation at byte " << cut << " accepted";
    EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument)
        << "at byte " << cut << ": " << res.status().ToString();
  }
}

TEST(SerializeTest, RejectsChecksumMismatch) {
  const HeteroGraph g = datasets::MakeToy(11);
  auto bytes = SerializeHeteroGraph(g);
  ASSERT_TRUE(bytes.ok());
  // Flip one bit in the body (past the 20-byte header): the size still
  // matches, so only the CRC catches it.
  std::string corrupt = *bytes;
  corrupt[corrupt.size() - 1] =
      static_cast<char>(corrupt[corrupt.size() - 1] ^ 0x01);
  auto res = DeserializeHeteroGraph(corrupt);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(res.status().message().find("checksum"), std::string::npos);
}

TEST(SerializeTest, LoadsLegacyVersion1Container) {
  const HeteroGraph g = datasets::MakeToy(11);
  auto bytes = SerializeHeteroGraph(g);
  ASSERT_TRUE(bytes.ok());
  // A version-1 container is magic + version + body, with no size/crc
  // header: rebuild one from the v2 bytes.
  std::string legacy = bytes->substr(0, 4);  // magic
  const uint32_t v1 = 1;
  legacy.append(reinterpret_cast<const char*>(&v1), sizeof(v1));
  legacy.append(bytes->substr(20));  // body
  auto res = DeserializeHeteroGraph(legacy);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->ContentFingerprint(), g.ContentFingerprint());
}

TEST(SerializeTest, RejectsUnsupportedVersion) {
  const HeteroGraph g = datasets::MakeToy(11);
  auto bytes = SerializeHeteroGraph(g);
  ASSERT_TRUE(bytes.ok());
  std::string future = *bytes;
  const uint32_t v99 = 99;
  std::memcpy(future.data() + 4, &v99, sizeof(v99));
  auto res = DeserializeHeteroGraph(future);
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.status().message().find("version"), std::string::npos);
}

TEST(SerializeTest, CorruptFileOnDiskIsRejected) {
  const HeteroGraph g = datasets::MakeToy(3);
  const std::string path = TempPath("corrupt.fhgc");
  ASSERT_TRUE(SaveHeteroGraph(g, path).ok());
  {
    // Flip a byte in the middle of the body.
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, size / 2, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, size / 2, SEEK_SET);
    std::fputc(c ^ 0xff, f);
    std::fclose(f);
  }
  auto res = LoadHeteroGraph(path);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// --- v3 page-aligned container --------------------------------------------

TEST(ContainerV3Test, MappedGraphMatchesHeapGraphExactly) {
  const HeteroGraph g = datasets::MakeToy(5);
  const std::string path = TempPath("v3_roundtrip.fhgc");
  auto saved = SaveHeteroGraphV3(g, path);
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  EXPECT_EQ(saved->fingerprint, g.ContentFingerprint());
  EXPECT_EQ(saved->nodes, g.TotalNodes());
  EXPECT_EQ(saved->edges, g.TotalEdges());

  auto mapped = MapHeteroGraphDetailed(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->fingerprint, g.ContentFingerprint());
  ExpectGraphsEqual(mapped->graph, g);
  EXPECT_TRUE(mapped->graph.IsMapped());
  EXPECT_FALSE(g.IsMapped());
  // A mapped graph owns only labels/splits on the heap.
  EXPECT_LT(mapped->graph.ResidentHeapBytes(), g.ResidentHeapBytes());
  EXPECT_EQ(mapped->graph.MemoryBytes(), g.MemoryBytes());
  std::remove(path.c_str());
}

TEST(ContainerV3Test, LoadHeteroGraphDispatchesToMapping) {
  const HeteroGraph g = datasets::MakeToy(7);
  const std::string path = TempPath("v3_load.fhgc");
  ASSERT_TRUE(SaveHeteroGraphV3(g, path).ok());
  auto loaded = LoadHeteroGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->IsMapped());
  ExpectGraphsEqual(*loaded, g);
  std::remove(path.c_str());
}

TEST(ContainerV3Test, MappingOutlivesTheGraphCopies) {
  const HeteroGraph g = datasets::MakeToy(3);
  const std::string path = TempPath("v3_keepalive.fhgc");
  ASSERT_TRUE(SaveHeteroGraphV3(g, path).ok());
  CsrMatrix adj;
  {
    auto mapped = MapHeteroGraph(path);
    ASSERT_TRUE(mapped.ok());
    adj = mapped->relation(0).adj;  // copy of a view shares the keepalive
  }
  std::remove(path.c_str());  // mapping survives the unlink
  EXPECT_TRUE(adj.is_mapped());
  EXPECT_TRUE(adj.Validate().ok());
  EXPECT_GT(adj.nnz(), 0);
}

TEST(ContainerV3Test, InMemoryV3DeserializesToOwnedStorage) {
  const HeteroGraph g = datasets::MakeToy(9);
  const std::string path = TempPath("v3_inmem.fhgc");
  ASSERT_TRUE(SaveHeteroGraphV3(g, path).ok());
  const std::string bytes = ReadFileBytes(path);
  std::remove(path.c_str());
  auto back = DeserializeHeteroGraph(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_FALSE(back->IsMapped());
  ExpectGraphsEqual(*back, g);
}

TEST(ContainerV3Test, InspectReportsSectionsAndStructure) {
  const HeteroGraph g = datasets::MakeToy(5);
  const std::string path = TempPath("v3_inspect.fhgc");
  ASSERT_TRUE(SaveHeteroGraphV3(g, path).ok());
  auto info = InspectContainer(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->version, 3u);
  EXPECT_TRUE(info->crc_ok);
  EXPECT_EQ(info->fingerprint, g.ContentFingerprint());
  ASSERT_EQ(info->types.size(), static_cast<size_t>(g.NumNodeTypes()));
  ASSERT_EQ(info->relations.size(), static_cast<size_t>(g.NumRelations()));
  for (RelationId r = 0; r < g.NumRelations(); ++r) {
    EXPECT_EQ(info->relations[static_cast<size_t>(r)].name,
              g.relation(r).name);
    EXPECT_EQ(info->relations[static_cast<size_t>(r)].nnz,
              g.relation(r).adj.nnz());
  }
  // meta + 3 per relation + features per type + labels + 3 splits.
  const size_t expected = 1 + 3 * static_cast<size_t>(g.NumRelations()) +
                          static_cast<size_t>(g.NumNodeTypes()) + 1 + 3;
  EXPECT_EQ(info->sections.size(), expected);
  for (const auto& s : info->sections) {
    EXPECT_TRUE(s.crc_ok) << s.kind << "[" << s.index << "]";
    EXPECT_EQ(s.offset % 4096, 0u) << s.kind;
  }
  std::remove(path.c_str());
}

TEST(ContainerV3Test, InspectStillWorksOnLegacyContainers) {
  const HeteroGraph g = datasets::MakeToy(5);
  const std::string path = TempPath("v2_inspect.fhgc");
  ASSERT_TRUE(SaveHeteroGraph(g, path).ok());
  auto info = InspectContainer(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->version, 2u);
  EXPECT_TRUE(info->crc_ok);
  ASSERT_EQ(info->relations.size(), static_cast<size_t>(g.NumRelations()));
  EXPECT_EQ(info->relations[0].nnz, g.relation(0).adj.nnz());
  // Corrupt a byte: inspect should still succeed but report the bad CRC.
  std::string bytes = ReadFileBytes(path);
  bytes[bytes.size() - 1] = static_cast<char>(bytes[bytes.size() - 1] ^ 0x01);
  WriteFileBytes(path, bytes);
  info = InspectContainer(path);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->crc_ok);
  std::remove(path.c_str());
}

TEST(ContainerV3Test, RejectsTruncationAtEverySectionBoundary) {
  const HeteroGraph g = datasets::MakeToy(5);
  const std::string path = TempPath("v3_trunc.fhgc");
  ASSERT_TRUE(SaveHeteroGraphV3(g, path).ok());
  auto info = InspectContainer(path);
  ASSERT_TRUE(info.ok());
  const std::string full = ReadFileBytes(path);
  std::vector<size_t> cuts = {0, 100, 4095, 4096};
  for (const auto& s : info->sections) {
    cuts.push_back(static_cast<size_t>(s.offset));
    cuts.push_back(static_cast<size_t>(s.offset + s.size / 2));
    cuts.push_back(static_cast<size_t>(s.offset + s.size));
  }
  cuts.push_back(full.size() - 1);
  const std::string cut_path = TempPath("v3_trunc_cut.fhgc");
  for (size_t cut : cuts) {
    if (cut >= full.size()) continue;
    WriteFileBytes(cut_path, std::string_view(full).substr(0, cut));
    auto res = MapHeteroGraphDetailed(cut_path);
    EXPECT_FALSE(res.ok()) << "truncation at byte " << cut << " accepted";
    auto res2 = DeserializeHeteroGraph(std::string_view(full).substr(0, cut));
    EXPECT_FALSE(res2.ok()) << "in-memory truncation at " << cut;
  }
  std::remove(path.c_str());
  std::remove(cut_path.c_str());
}

TEST(ContainerV3Test, RejectsBitFlipInEverySection) {
  const HeteroGraph g = datasets::MakeToy(5);
  const std::string path = TempPath("v3_flip.fhgc");
  ASSERT_TRUE(SaveHeteroGraphV3(g, path).ok());
  auto info = InspectContainer(path);
  ASSERT_TRUE(info.ok());
  const std::string full = ReadFileBytes(path);
  const std::string flip_path = TempPath("v3_flip_cur.fhgc");
  for (const auto& s : info->sections) {
    if (s.size == 0) continue;
    std::string corrupt = full;
    const size_t pos = static_cast<size_t>(s.offset + s.size / 2);
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x10);
    WriteFileBytes(flip_path, corrupt);
    auto res = MapHeteroGraphDetailed(flip_path);
    ASSERT_FALSE(res.ok()) << "bit flip in " << s.kind << " accepted";
    EXPECT_NE(res.status().ToString().find("checksum"), std::string::npos)
        << res.status().ToString();
  }
  std::remove(path.c_str());
  std::remove(flip_path.c_str());
}

TEST(ContainerV3Test, RejectsMisalignedSection) {
  const HeteroGraph g = datasets::MakeToy(5);
  const std::string path = TempPath("v3_misalign.fhgc");
  ASSERT_TRUE(SaveHeteroGraphV3(g, path).ok());
  std::string bytes = ReadFileBytes(path);
  std::remove(path.c_str());
  // Header layout: table_offset at byte 24, table_crc at 48, header_crc
  // at 52. Shift the first section's offset off the page boundary, then
  // re-seal the table and header CRCs so only the alignment check fires.
  uint64_t table_offset = 0, table_size = 0;
  std::memcpy(&table_offset, bytes.data() + 24, 8);
  std::memcpy(&table_size, bytes.data() + 32, 8);
  uint64_t sec_offset = 0;  // section entry: magic,kind,index,crc, offset@16
  std::memcpy(&sec_offset, bytes.data() + table_offset + 16, 8);
  sec_offset += 8;
  std::memcpy(bytes.data() + table_offset + 16, &sec_offset, 8);
  const uint32_t table_crc = Crc32(bytes.data() + table_offset, table_size);
  std::memcpy(bytes.data() + 48, &table_crc, 4);
  const uint32_t header_crc = Crc32(bytes.data(), 52);
  std::memcpy(bytes.data() + 52, &header_crc, 4);
  auto res = DeserializeHeteroGraph(bytes);
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.status().ToString().find("misaligned"), std::string::npos)
      << res.status().ToString();
}

TEST(ContainerV3Test, RejectsTamperedFingerprint) {
  const HeteroGraph g = datasets::MakeToy(5);
  const std::string path = TempPath("v3_fp.fhgc");
  ASSERT_TRUE(SaveHeteroGraphV3(g, path).ok());
  std::string bytes = ReadFileBytes(path);
  std::remove(path.c_str());
  // The content fingerprint lives at header byte 40 and is covered by the
  // header CRC: flipping it without re-sealing must be detected.
  bytes[40] = static_cast<char>(bytes[40] ^ 0x01);
  auto res = DeserializeHeteroGraph(bytes);
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.status().ToString().find("header checksum"),
            std::string::npos)
      << res.status().ToString();
}

TEST(ContainerV3Test, AbandonedWriterLeavesNoFiles) {
  const std::string path = TempPath("v3_abandon.fhgc");
  {
    auto w = HeteroGraphV3Writer::Create(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->AddNodeType("t", 4).ok());
    // Writer destroyed without Finish: simulated crash.
  }
  std::FILE* f = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(f, nullptr) << "tmp file left behind";
  std::FILE* g = std::fopen(path.c_str(), "rb");
  EXPECT_EQ(g, nullptr) << "target file published without Finish";
}

TEST(ContainerV3Test, SaveIsAtomicOverExistingFile) {
  const HeteroGraph good = datasets::MakeToy(5);
  const HeteroGraph other = datasets::MakeToy(6);
  const std::string path = TempPath("v3_atomic.fhgc");
  ASSERT_TRUE(SaveHeteroGraphV3(good, path).ok());
  // A pre-existing stale tmp sibling must not break or corrupt a save.
  WriteFileBytes(path + ".tmp", "stale partial write");
  ASSERT_TRUE(SaveHeteroGraphV3(other, path).ok());
  auto loaded = LoadHeteroGraph(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->ContentFingerprint(), other.ContentFingerprint());
  // Same contract for the v2 writer.
  WriteFileBytes(path + ".tmp", "stale partial write");
  ASSERT_TRUE(SaveHeteroGraph(good, path).ok());
  loaded = LoadHeteroGraph(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->ContentFingerprint(), good.ContentFingerprint());
  std::remove(path.c_str());
}

TEST(ContainerV3Test, StreamingWriterEnforcesItsContract) {
  const std::string path = TempPath("v3_contract.fhgc");
  auto w = HeteroGraphV3Writer::Create(path);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(w->AddNodeType("a", 3).ok());
  EXPECT_FALSE(w->AddNodeType("a", 3).ok());  // duplicate type
  auto adj = CsrMatrix::FromCoo(3, 3, {{0, 1, 1.0f}});
  ASSERT_TRUE(adj.ok());
  EXPECT_FALSE(w->AddRelation("r", 0, 5, *adj).ok());  // bad endpoint
  ASSERT_TRUE(w->AddRelation("r", 0, 0, *adj).ok());
  ASSERT_TRUE(w->BeginFeatures(0, 3, 2).ok());
  EXPECT_FALSE(w->BeginFeatures(0, 3, 2).ok());  // already open
  const float rows[4] = {1, 2, 3, 4};
  ASSERT_TRUE(w->AppendFeatureRows(rows, 2).ok());
  EXPECT_FALSE(w->EndFeatures().ok());  // short of declared rows
  ASSERT_TRUE(w->AppendFeatureRows(rows, 1).ok());
  ASSERT_TRUE(w->EndFeatures().ok());
  EXPECT_FALSE(w->Finish().ok());  // fingerprint not set
  ASSERT_TRUE(w->SetContentFingerprint(1).ok());
  // Fingerprint intentionally wrong for a real graph, but the writer only
  // stores it; round-trip correctness of the value is SaveHeteroGraphV3's
  // job and covered above.
  auto summary = w->Finish();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->nodes, 3);
  EXPECT_EQ(summary->edges, 1);
  std::remove(path.c_str());
}

TEST(ContainerV3Test, RoundTripsGraphWithoutTargetOrFeatures) {
  HeteroGraph g;
  auto t0 = g.AddNodeType("only", 4);
  ASSERT_TRUE(t0.ok());
  auto adj = CsrMatrix::FromCoo(4, 4, {{0, 1, 1.0f}, {2, 3, 2.0f}});
  ASSERT_TRUE(adj.ok());
  ASSERT_TRUE(g.AddRelation("self", *t0, *t0, std::move(*adj)).ok());
  const std::string path = TempPath("v3_minimal.fhgc");
  ASSERT_TRUE(SaveHeteroGraphV3(g, path).ok());
  auto mapped = MapHeteroGraph(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ExpectGraphsEqual(*mapped, g);
  std::remove(path.c_str());
}

TEST(ContainerV3Test, RoundTripsEmptyRelation) {
  HeteroGraph g;
  auto t0 = g.AddNodeType("a", 3);
  auto t1 = g.AddNodeType("b", 2);
  ASSERT_TRUE(t0.ok() && t1.ok());
  auto adj = CsrMatrix::FromCoo(3, 2, {});
  ASSERT_TRUE(adj.ok());
  ASSERT_TRUE(g.AddRelation("empty", *t0, *t1, std::move(*adj)).ok());
  const std::string path = TempPath("v3_empty_rel.fhgc");
  ASSERT_TRUE(SaveHeteroGraphV3(g, path).ok());
  auto mapped = MapHeteroGraph(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->relation(0).adj.nnz(), 0);
  ExpectGraphsEqual(*mapped, g);
  std::remove(path.c_str());
}

TEST(CsvLoaderTest, LoadsMinimalDataset) {
  const std::string dir = "/tmp/freehgc_csv_test";
  ASSERT_EQ(system(("mkdir -p " + dir).c_str()), 0);
  {
    std::ofstream types(dir + "/types.csv");
    types << "paper,3,2\nauthor,2,2\n";
    std::ofstream edges(dir + "/edges.csv");
    edges << "pa,paper,author,0,0\npa,paper,author,1,0\n"
          << "pa,paper,author,2,1\n";
    std::ofstream feats(dir + "/features_paper.csv");
    feats << "1.0,0.0\n0.5,0.5\n0.0,1.0\n";
    std::ofstream labels(dir + "/labels.csv");
    labels << "target,paper,2\n0,0\n1,0\n2,1\n";
  }
  auto g = LoadHeteroGraphCsv(dir);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumNodeTypes(), 2);
  EXPECT_EQ(g->NodeCount(g->TypeByName("paper").value()), 3);
  EXPECT_EQ(g->NumRelations(), 2);  // pa + auto reverse
  EXPECT_EQ(g->labels(), (std::vector<int32_t>{0, 0, 1}));
  EXPECT_FLOAT_EQ(g->Features(0).At(1, 1), 0.5f);
  EXPECT_TRUE(g->Validate().ok());
  ASSERT_EQ(system(("rm -rf " + dir).c_str()), 0);
}

TEST(CsvLoaderTest, RejectsMalformedInputs) {
  const std::string dir = "/tmp/freehgc_csv_bad";
  ASSERT_EQ(system(("mkdir -p " + dir).c_str()), 0);
  {
    std::ofstream types(dir + "/types.csv");
    types << "paper,3\n";  // missing dim column
  }
  EXPECT_FALSE(LoadHeteroGraphCsv(dir).ok());
  EXPECT_EQ(LoadHeteroGraphCsv("/tmp/no_such_dir_xyz").status().code(),
            StatusCode::kNotFound);
  ASSERT_EQ(system(("rm -rf " + dir).c_str()), 0);
}

}  // namespace
}  // namespace freehgc
