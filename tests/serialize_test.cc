#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <string_view>

#include "core/freehgc.h"
#include "datasets/generator.h"
#include "graph/serialize.h"

namespace freehgc {
namespace {

std::string TempPath(const std::string& name) {
  return std::string("/tmp/freehgc_test_") + name;
}

TEST(SerializeTest, RoundTripsToyGraph) {
  const HeteroGraph g = datasets::MakeToy(5);
  const std::string path = TempPath("toy.fhgc");
  ASSERT_TRUE(SaveHeteroGraph(g, path).ok());
  auto loaded = LoadHeteroGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumNodeTypes(), g.NumNodeTypes());
  EXPECT_EQ(loaded->NumRelations(), g.NumRelations());
  EXPECT_EQ(loaded->TotalNodes(), g.TotalNodes());
  EXPECT_EQ(loaded->TotalEdges(), g.TotalEdges());
  EXPECT_EQ(loaded->labels(), g.labels());
  EXPECT_EQ(loaded->train_index(), g.train_index());
  EXPECT_EQ(loaded->test_index(), g.test_index());
  for (TypeId t = 0; t < g.NumNodeTypes(); ++t) {
    EXPECT_EQ(loaded->TypeName(t), g.TypeName(t));
    EXPECT_EQ(loaded->Features(t), g.Features(t));
  }
  for (RelationId r = 0; r < g.NumRelations(); ++r) {
    EXPECT_EQ(loaded->relation(r).adj, g.relation(r).adj);
    EXPECT_EQ(loaded->relation(r).name, g.relation(r).name);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, RoundTripsCondensedGraph) {
  const HeteroGraph g = datasets::MakeDblp(7, /*scale=*/0.05);
  core::FreeHgcOptions opts;
  opts.ratio = 0.1;
  opts.max_paths = 6;
  auto cond = core::Condense(g, opts);
  ASSERT_TRUE(cond.ok());
  const std::string path = TempPath("condensed.fhgc");
  ASSERT_TRUE(SaveHeteroGraph(cond->graph, path).ok());
  auto loaded = LoadHeteroGraph(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->TotalNodes(), cond->graph.TotalNodes());
  EXPECT_EQ(loaded->TotalEdges(), cond->graph.TotalEdges());
  EXPECT_TRUE(loaded->Validate().ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsGarbageAndMissingFiles) {
  EXPECT_EQ(LoadHeteroGraph("/tmp/definitely_missing.fhgc").status().code(),
            StatusCode::kNotFound);
  const std::string path = TempPath("garbage.fhgc");
  {
    std::ofstream out(path);
    out << "this is not a graph";
  }
  auto res = LoadHeteroGraph(path);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsTruncatedFile) {
  const HeteroGraph g = datasets::MakeToy(9);
  const std::string path = TempPath("trunc.fhgc");
  ASSERT_TRUE(SaveHeteroGraph(g, path).ok());
  // Truncate to half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  EXPECT_FALSE(LoadHeteroGraph(path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, InMemoryRoundTrip) {
  const HeteroGraph g = datasets::MakeToy(11);
  auto bytes = SerializeHeteroGraph(g);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  auto back = DeserializeHeteroGraph(*bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->TotalNodes(), g.TotalNodes());
  EXPECT_EQ(back->TotalEdges(), g.TotalEdges());
  EXPECT_EQ(back->ContentFingerprint(), g.ContentFingerprint());
}

TEST(SerializeTest, RejectsBadMagic) {
  const HeteroGraph g = datasets::MakeToy(11);
  auto bytes = SerializeHeteroGraph(g);
  ASSERT_TRUE(bytes.ok());
  std::string corrupt = *bytes;
  corrupt[0] = 'X';
  auto res = DeserializeHeteroGraph(corrupt);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(res.status().message().find("not a FreeHGC graph"),
            std::string::npos);
}

TEST(SerializeTest, RejectsTruncationAtEveryRegion) {
  const HeteroGraph g = datasets::MakeToy(11);
  auto bytes = SerializeHeteroGraph(g);
  ASSERT_TRUE(bytes.ok());
  const std::string& full = *bytes;
  // Header is magic(4) + version(4) + body size(8) + crc(4) = 20 bytes.
  const size_t cuts[] = {0, 3, 4, 7, 8, 15, 19, 20, full.size() / 2,
                         full.size() - 1};
  for (size_t cut : cuts) {
    ASSERT_LT(cut, full.size());
    auto res = DeserializeHeteroGraph(std::string_view(full).substr(0, cut));
    EXPECT_FALSE(res.ok()) << "truncation at byte " << cut << " accepted";
    EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument)
        << "at byte " << cut << ": " << res.status().ToString();
  }
}

TEST(SerializeTest, RejectsChecksumMismatch) {
  const HeteroGraph g = datasets::MakeToy(11);
  auto bytes = SerializeHeteroGraph(g);
  ASSERT_TRUE(bytes.ok());
  // Flip one bit in the body (past the 20-byte header): the size still
  // matches, so only the CRC catches it.
  std::string corrupt = *bytes;
  corrupt[corrupt.size() - 1] =
      static_cast<char>(corrupt[corrupt.size() - 1] ^ 0x01);
  auto res = DeserializeHeteroGraph(corrupt);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(res.status().message().find("checksum"), std::string::npos);
}

TEST(SerializeTest, LoadsLegacyVersion1Container) {
  const HeteroGraph g = datasets::MakeToy(11);
  auto bytes = SerializeHeteroGraph(g);
  ASSERT_TRUE(bytes.ok());
  // A version-1 container is magic + version + body, with no size/crc
  // header: rebuild one from the v2 bytes.
  std::string legacy = bytes->substr(0, 4);  // magic
  const uint32_t v1 = 1;
  legacy.append(reinterpret_cast<const char*>(&v1), sizeof(v1));
  legacy.append(bytes->substr(20));  // body
  auto res = DeserializeHeteroGraph(legacy);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->ContentFingerprint(), g.ContentFingerprint());
}

TEST(SerializeTest, RejectsUnsupportedVersion) {
  const HeteroGraph g = datasets::MakeToy(11);
  auto bytes = SerializeHeteroGraph(g);
  ASSERT_TRUE(bytes.ok());
  std::string future = *bytes;
  const uint32_t v99 = 99;
  std::memcpy(future.data() + 4, &v99, sizeof(v99));
  auto res = DeserializeHeteroGraph(future);
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.status().message().find("version"), std::string::npos);
}

TEST(SerializeTest, CorruptFileOnDiskIsRejected) {
  const HeteroGraph g = datasets::MakeToy(3);
  const std::string path = TempPath("corrupt.fhgc");
  ASSERT_TRUE(SaveHeteroGraph(g, path).ok());
  {
    // Flip a byte in the middle of the body.
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, size / 2, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, size / 2, SEEK_SET);
    std::fputc(c ^ 0xff, f);
    std::fclose(f);
  }
  auto res = LoadHeteroGraph(path);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CsvLoaderTest, LoadsMinimalDataset) {
  const std::string dir = "/tmp/freehgc_csv_test";
  ASSERT_EQ(system(("mkdir -p " + dir).c_str()), 0);
  {
    std::ofstream types(dir + "/types.csv");
    types << "paper,3,2\nauthor,2,2\n";
    std::ofstream edges(dir + "/edges.csv");
    edges << "pa,paper,author,0,0\npa,paper,author,1,0\n"
          << "pa,paper,author,2,1\n";
    std::ofstream feats(dir + "/features_paper.csv");
    feats << "1.0,0.0\n0.5,0.5\n0.0,1.0\n";
    std::ofstream labels(dir + "/labels.csv");
    labels << "target,paper,2\n0,0\n1,0\n2,1\n";
  }
  auto g = LoadHeteroGraphCsv(dir);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumNodeTypes(), 2);
  EXPECT_EQ(g->NodeCount(g->TypeByName("paper").value()), 3);
  EXPECT_EQ(g->NumRelations(), 2);  // pa + auto reverse
  EXPECT_EQ(g->labels(), (std::vector<int32_t>{0, 0, 1}));
  EXPECT_FLOAT_EQ(g->Features(0).At(1, 1), 0.5f);
  EXPECT_TRUE(g->Validate().ok());
  ASSERT_EQ(system(("rm -rf " + dir).c_str()), 0);
}

TEST(CsvLoaderTest, RejectsMalformedInputs) {
  const std::string dir = "/tmp/freehgc_csv_bad";
  ASSERT_EQ(system(("mkdir -p " + dir).c_str()), 0);
  {
    std::ofstream types(dir + "/types.csv");
    types << "paper,3\n";  // missing dim column
  }
  EXPECT_FALSE(LoadHeteroGraphCsv(dir).ok());
  EXPECT_EQ(LoadHeteroGraphCsv("/tmp/no_such_dir_xyz").status().code(),
            StatusCode::kNotFound);
  ASSERT_EQ(system(("rm -rf " + dir).c_str()), 0);
}

}  // namespace
}  // namespace freehgc
