#include <gtest/gtest.h>

#include "datasets/generator.h"
#include "graph/hetero_graph.h"
#include "sparse/ops.h"

namespace freehgc {
namespace {

CsrMatrix Adj(int32_t rows, int32_t cols, std::vector<CooEntry> e) {
  auto r = CsrMatrix::FromCoo(rows, cols, std::move(e));
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

/// Small 3-type graph: 4 target "t" nodes, 3 "f" father nodes, 2 "l" leaf
/// nodes, chain t - f - l.
HeteroGraph BuildChainGraph() {
  HeteroGraph g;
  const TypeId t = g.AddNodeType("t", 4).value();
  const TypeId f = g.AddNodeType("f", 3).value();
  const TypeId l = g.AddNodeType("l", 2).value();
  EXPECT_TRUE(g.AddRelation("tf", t, f,
                            Adj(4, 3, {{0, 0, 1}, {1, 0, 1}, {2, 1, 1},
                                       {3, 2, 1}}))
                  .ok());
  EXPECT_TRUE(
      g.AddRelation("fl", f, l, Adj(3, 2, {{0, 0, 1}, {1, 0, 1}, {2, 1, 1}}))
          .ok());
  g.EnsureReverseRelations();
  Matrix xt(4, 2), xf(3, 2), xl(2, 2);
  xt.Fill(1.0f);
  xf.Fill(2.0f);
  xl.Fill(3.0f);
  EXPECT_TRUE(g.SetFeatures(t, xt).ok());
  EXPECT_TRUE(g.SetFeatures(f, xf).ok());
  EXPECT_TRUE(g.SetFeatures(l, xl).ok());
  EXPECT_TRUE(g.SetTarget(t, {0, 1, 0, 1}, 2).ok());
  EXPECT_TRUE(g.SetSplit({0, 1}, {2}, {3}).ok());
  EXPECT_TRUE(g.Validate().ok());
  return g;
}

TEST(HeteroGraphTest, ConstructionBasics) {
  HeteroGraph g = BuildChainGraph();
  EXPECT_EQ(g.NumNodeTypes(), 3);
  EXPECT_EQ(g.NodeCount(0), 4);
  EXPECT_EQ(g.TypeName(1), "f");
  EXPECT_EQ(g.TypeByName("l").value(), 2);
  EXPECT_FALSE(g.TypeByName("nope").ok());
  EXPECT_EQ(g.TotalNodes(), 9);
  EXPECT_EQ(g.num_classes(), 2);
  EXPECT_GT(g.MemoryBytes(), 0u);
}

TEST(HeteroGraphTest, DuplicateTypeRejected) {
  HeteroGraph g;
  EXPECT_TRUE(g.AddNodeType("a", 1).ok());
  EXPECT_FALSE(g.AddNodeType("a", 2).ok());
  EXPECT_FALSE(g.AddNodeType("b", -1).ok());
}

TEST(HeteroGraphTest, RelationShapeChecked) {
  HeteroGraph g;
  const TypeId a = g.AddNodeType("a", 3).value();
  const TypeId b = g.AddNodeType("b", 2).value();
  EXPECT_FALSE(g.AddRelation("bad", a, b, Adj(2, 2, {})).ok());
  EXPECT_TRUE(g.AddRelation("ok", a, b, Adj(3, 2, {})).ok());
  EXPECT_FALSE(g.AddRelation("oob", a, 9, Adj(3, 2, {})).ok());
}

TEST(HeteroGraphTest, EnsureReverseAddsTransposes) {
  HeteroGraph g = BuildChainGraph();
  // tf, fl plus rev_tf, rev_fl.
  EXPECT_EQ(g.NumRelations(), 4);
  bool found_rev = false;
  for (RelationId r = 0; r < g.NumRelations(); ++r) {
    if (g.relation(r).name == "rev_tf") {
      found_rev = true;
      EXPECT_EQ(g.relation(r).src_type, g.TypeByName("f").value());
      EXPECT_EQ(g.relation(r).dst_type, g.TypeByName("t").value());
      EXPECT_EQ(g.relation(r).adj,
                sparse::Transpose(g.relation(0).adj));
    }
  }
  EXPECT_TRUE(found_rev);
  // Idempotent: calling again adds nothing.
  HeteroGraph g2 = g;
  g2.EnsureReverseRelations();
  EXPECT_EQ(g2.NumRelations(), 4);
}

TEST(HeteroGraphTest, RelationsFromTo) {
  HeteroGraph g = BuildChainGraph();
  const TypeId f = g.TypeByName("f").value();
  const auto from_f = g.RelationsFrom(f);
  const auto to_f = g.RelationsTo(f);
  EXPECT_EQ(from_f.size(), 2u);  // fl, rev_tf
  EXPECT_EQ(to_f.size(), 2u);    // tf, rev_fl
}

TEST(HeteroGraphTest, LabelValidation) {
  HeteroGraph g;
  const TypeId t = g.AddNodeType("t", 3).value();
  EXPECT_FALSE(g.SetTarget(t, {0, 1}, 2).ok());      // wrong size
  EXPECT_FALSE(g.SetTarget(t, {0, 1, 5}, 2).ok());   // label out of range
  EXPECT_TRUE(g.SetTarget(t, {0, 1, 1}, 2).ok());
  EXPECT_FALSE(g.SetSplit({7}, {}, {}).ok());        // split out of range
  EXPECT_TRUE(g.SetSplit({0}, {1}, {2}).ok());
}

TEST(HeteroGraphTest, SplitRequiresTarget) {
  HeteroGraph g;
  g.AddNodeType("t", 3).value();
  EXPECT_EQ(g.SetSplit({0}, {}, {}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(HeteroGraphTest, SchemaClassification) {
  HeteroGraph g = BuildChainGraph();
  const auto roles = g.ClassifySchema();
  EXPECT_EQ(roles[0], TypeRole::kRoot);
  EXPECT_EQ(roles[1], TypeRole::kFather);
  EXPECT_EQ(roles[2], TypeRole::kLeaf);
}

TEST(HeteroGraphTest, AcmSchemaIsAllLeaves) {
  // ACM-style: every other type is terminal (no deeper children), so per
  // Fig. 5's bridge definition they are all leaves — the paper condenses
  // ACM's author type with information-loss minimization (Variant#5).
  const HeteroGraph g = datasets::MakeAcm(1, /*scale=*/0.05);
  const auto roles = g.ClassifySchema();
  int fathers = 0, leaves = 0;
  for (TypeId t = 0; t < g.NumNodeTypes(); ++t) {
    if (roles[static_cast<size_t>(t)] == TypeRole::kFather) ++fathers;
    if (roles[static_cast<size_t>(t)] == TypeRole::kLeaf) ++leaves;
  }
  EXPECT_EQ(fathers, 0);
  EXPECT_EQ(leaves, 3);
}

TEST(HeteroGraphTest, DblpSchemaHasLeaves) {
  // DBLP-style: author(root) - paper(father) - term/venue(leaf).
  const HeteroGraph g = datasets::MakeDblp(1, /*scale=*/0.05);
  const auto roles = g.ClassifySchema();
  EXPECT_EQ(roles[static_cast<size_t>(g.TypeByName("author").value())],
            TypeRole::kRoot);
  EXPECT_EQ(roles[static_cast<size_t>(g.TypeByName("paper").value())],
            TypeRole::kFather);
  EXPECT_EQ(roles[static_cast<size_t>(g.TypeByName("term").value())],
            TypeRole::kLeaf);
  EXPECT_EQ(roles[static_cast<size_t>(g.TypeByName("venue").value())],
            TypeRole::kLeaf);
}

TEST(HeteroGraphTest, InducedSubgraphRestrictsEverything) {
  HeteroGraph g = BuildChainGraph();
  auto sub = g.InducedSubgraph({{0, 2}, {0, 1}, {0}});
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  EXPECT_EQ(sub->NodeCount(0), 2);
  EXPECT_EQ(sub->NodeCount(1), 2);
  EXPECT_EQ(sub->NodeCount(2), 1);
  EXPECT_TRUE(sub->Validate().ok());
  // tf originally: 0-0, 1-0, 2-1, 3-2; kept t={0,2}, f={0,1} -> edges
  // (0->0) and (2->1) i.e. new (0,0) and (1,1).
  const CsrMatrix& adj = sub->relation(0).adj;
  EXPECT_EQ(adj.nnz(), 2);
  EXPECT_TRUE(adj.Contains(0, 0));
  EXPECT_TRUE(adj.Contains(1, 1));
  // Labels follow the kept target ids (0 -> 0, 2 -> 0).
  EXPECT_EQ(sub->labels(), (std::vector<int32_t>{0, 0}));
  // Every kept target node becomes a training example.
  EXPECT_EQ(sub->train_index().size(), 2u);
  // Features gathered.
  EXPECT_FLOAT_EQ(sub->Features(1).At(0, 0), 2.0f);
}

TEST(HeteroGraphTest, InducedSubgraphRejectsBadKeepLists) {
  HeteroGraph g = BuildChainGraph();
  EXPECT_FALSE(g.InducedSubgraph({{0}, {0}}).ok());          // wrong arity
  EXPECT_FALSE(g.InducedSubgraph({{9}, {0}, {0}}).ok());     // out of range
  EXPECT_FALSE(g.InducedSubgraph({{0, 0}, {0}, {0}}).ok());  // duplicate
}

TEST(HeteroGraphTest, ValidateCatchesInternalInconsistency) {
  HeteroGraph g = BuildChainGraph();
  EXPECT_TRUE(g.Validate().ok());
}

}  // namespace
}  // namespace freehgc
