#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dense/matrix.h"

namespace freehgc {
namespace {

Matrix Make(std::initializer_list<std::initializer_list<float>> rows) {
  const int64_t r = static_cast<int64_t>(rows.size());
  const int64_t c = static_cast<int64_t>(rows.begin()->size());
  Matrix m(r, c);
  int64_t i = 0;
  for (const auto& row : rows) {
    int64_t j = 0;
    for (float v : row) m.At(i, j++) = v;
    ++i;
  }
  return m;
}

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6);
  EXPECT_FALSE(m.empty());
  EXPECT_EQ(m.At(1, 2), 0.0f);
  m.At(1, 2) = 5.0f;
  EXPECT_EQ(m.At(1, 2), 5.0f);
  EXPECT_TRUE(Matrix().empty());
}

TEST(MatrixTest, FillAndEquality) {
  Matrix a(2, 2), b(2, 2);
  a.Fill(3.0f);
  b.Fill(3.0f);
  EXPECT_EQ(a, b);
  b.At(0, 0) = 1.0f;
  EXPECT_FALSE(a == b);
}

TEST(MatrixTest, GatherRows) {
  Matrix m = Make({{1, 2}, {3, 4}, {5, 6}});
  Matrix g = m.GatherRows({2, 0, 2});
  EXPECT_EQ(g.rows(), 3);
  EXPECT_EQ(g.At(0, 0), 5.0f);
  EXPECT_EQ(g.At(1, 1), 2.0f);
  EXPECT_EQ(g.At(2, 0), 5.0f);
}

TEST(MatrixTest, ConcatCols) {
  Matrix a = Make({{1, 2}, {3, 4}});
  Matrix b = Make({{5}, {6}});
  Matrix c = a.ConcatCols(b);
  EXPECT_EQ(c.cols(), 3);
  EXPECT_EQ(c.At(0, 2), 5.0f);
  EXPECT_EQ(c.At(1, 0), 3.0f);
}

TEST(MatrixTest, RandomFills) {
  Rng rng(5);
  Matrix m(50, 50);
  m.FillUniform(rng, -1.0f, 1.0f);
  for (int64_t i = 0; i < m.size(); ++i) {
    EXPECT_GE(m.data()[i], -1.0f);
    EXPECT_LT(m.data()[i], 1.0f);
  }
  Matrix g(100, 100);
  g.FillGaussian(rng, 2.0f);
  double sq = 0.0;
  for (int64_t i = 0; i < g.size(); ++i) sq += double(g.data()[i]) * g.data()[i];
  EXPECT_NEAR(std::sqrt(sq / g.size()), 2.0, 0.1);
}

TEST(MatMulTest, HandComputed) {
  Matrix a = Make({{1, 2}, {3, 4}});
  Matrix b = Make({{5, 6}, {7, 8}});
  Matrix c = dense::MatMul(a, b);
  EXPECT_FLOAT_EQ(c.At(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.At(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 50.0f);
}

TEST(MatMulTest, TransposedVariantsAgree) {
  Rng rng(7);
  Matrix a(4, 6), b(6, 3);
  a.FillGaussian(rng, 1.0f);
  b.FillGaussian(rng, 1.0f);
  const Matrix ab = dense::MatMul(a, b);

  // a^T stored explicitly, then MatMulTA should reproduce ab.
  Matrix at(6, 4);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 6; ++j) at.At(j, i) = a.At(i, j);
  }
  const Matrix ab2 = dense::MatMulTA(at, b);
  // b^T stored explicitly, then MatMulTB should reproduce ab.
  Matrix bt(3, 6);
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = 0; j < 3; ++j) bt.At(j, i) = b.At(i, j);
  }
  const Matrix ab3 = dense::MatMulTB(a, bt);

  for (int64_t i = 0; i < ab.rows(); ++i) {
    for (int64_t j = 0; j < ab.cols(); ++j) {
      EXPECT_NEAR(ab.At(i, j), ab2.At(i, j), 1e-4f);
      EXPECT_NEAR(ab.At(i, j), ab3.At(i, j), 1e-4f);
    }
  }
}

TEST(DenseOpsTest, AddAxpyScale) {
  Matrix a = Make({{1, 2}});
  Matrix b = Make({{10, 20}});
  EXPECT_EQ(dense::Add(a, b).At(0, 1), 22.0f);
  EXPECT_EQ(dense::Scale(a, 3.0f).At(0, 0), 3.0f);
  dense::Axpy(0.5f, b, a);
  EXPECT_EQ(a.At(0, 0), 6.0f);
}

TEST(DenseOpsTest, AddRowVector) {
  Matrix a = Make({{1, 2}, {3, 4}});
  dense::AddRowVector(a, {10.0f, 20.0f});
  EXPECT_EQ(a.At(0, 0), 11.0f);
  EXPECT_EQ(a.At(1, 1), 24.0f);
}

TEST(DenseOpsTest, SoftmaxRowsSumToOne) {
  Matrix a = Make({{1, 2, 3}, {-5, 0, 5}});
  dense::SoftmaxRows(a);
  for (int64_t r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_GT(a.At(r, c), 0.0f);
      sum += a.At(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  EXPECT_GT(a.At(0, 2), a.At(0, 0));
}

TEST(DenseOpsTest, SoftmaxNumericallyStableForLargeLogits) {
  Matrix a = Make({{1000.0f, 1001.0f}});
  dense::SoftmaxRows(a);
  EXPECT_FALSE(std::isnan(a.At(0, 0)));
  EXPECT_NEAR(a.At(0, 0) + a.At(0, 1), 1.0f, 1e-5f);
}

TEST(DenseOpsTest, ArgmaxRows) {
  Matrix a = Make({{1, 5, 2}, {9, 0, 3}});
  const auto idx = dense::ArgmaxRows(a);
  EXPECT_EQ(idx, (std::vector<int32_t>{1, 0}));
}

TEST(DenseOpsTest, ColumnMean) {
  Matrix a = Make({{1, 10}, {3, 30}, {5, 50}});
  const auto all = dense::ColumnMean(a, {});
  EXPECT_FLOAT_EQ(all[0], 3.0f);
  EXPECT_FLOAT_EQ(all[1], 30.0f);
  const auto some = dense::ColumnMean(a, {0, 2});
  EXPECT_FLOAT_EQ(some[0], 3.0f);
  EXPECT_FLOAT_EQ(some[1], 30.0f);
}

TEST(DenseOpsTest, NormsAndDistances) {
  Matrix a = Make({{3, 4}});
  EXPECT_FLOAT_EQ(dense::FrobeniusNorm(a), 5.0f);
  EXPECT_FLOAT_EQ(dense::MeanAbs(a), 3.5f);
  Matrix b = Make({{0, 0}});
  EXPECT_FLOAT_EQ(dense::RowSquaredDistance(a, 0, b, 0), 25.0f);
  EXPECT_FLOAT_EQ(dense::Dot(a, a), 25.0f);
}

}  // namespace
}  // namespace freehgc
