#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "datasets/generator.h"
#include "hgnn/models.h"
#include "hgnn/propagate.h"
#include "hgnn/trainer.h"

namespace freehgc::hgnn {
namespace {

TEST(PropagateTest, BlockLayoutAndShapes) {
  const HeteroGraph g = datasets::MakeToy(1);
  PropagateOptions opts;
  opts.max_hops = 2;
  const PropagatedFeatures f = PropagateFeatures(g, opts);
  ASSERT_GE(f.blocks.size(), 2u);
  EXPECT_EQ(f.names[0], "raw");
  EXPECT_EQ(f.end_types[0], g.target_type());
  for (const auto& b : f.blocks) {
    EXPECT_EQ(b.rows(), g.NodeCount(g.target_type()));
  }
  EXPECT_EQ(f.blocks.size(), f.names.size());
  EXPECT_EQ(f.blocks.size(), f.end_types.size());
}

TEST(PropagateTest, MeanAggregationIsConvexCombination) {
  // Propagated feature values must lie within the range of the source
  // features (row-stochastic composition = convex combination).
  const HeteroGraph g = datasets::MakeToy(2);
  PropagateOptions opts;
  opts.max_hops = 1;
  const PropagatedFeatures f = PropagateFeatures(g, opts);
  for (size_t p = 1; p < f.blocks.size(); ++p) {
    const Matrix& src = g.Features(f.end_types[p]);
    float lo = src.data()[0], hi = src.data()[0];
    for (int64_t i = 0; i < src.size(); ++i) {
      lo = std::min(lo, src.data()[i]);
      hi = std::max(hi, src.data()[i]);
    }
    for (int64_t i = 0; i < f.blocks[p].size(); ++i) {
      EXPECT_GE(f.blocks[p].data()[i], lo - 1e-4f);
      EXPECT_LE(f.blocks[p].data()[i], hi + 1e-4f);
    }
  }
}

TEST(PropagateTest, CondensedGraphSharesBlockLayout) {
  const HeteroGraph g = datasets::MakeToy(3);
  PropagateOptions opts;
  opts.max_hops = 2;
  const EvalContext ctx = BuildEvalContext(g, opts);
  // Induce a subgraph (same schema) and propagate along the same paths.
  std::vector<std::vector<int32_t>> keep(
      static_cast<size_t>(g.NumNodeTypes()));
  for (TypeId t = 0; t < g.NumNodeTypes(); ++t) {
    for (int32_t v = 0; v < g.NodeCount(t) / 2; ++v) {
      keep[static_cast<size_t>(t)].push_back(v);
    }
  }
  auto sub = g.InducedSubgraph(keep);
  ASSERT_TRUE(sub.ok());
  const PropagatedFeatures f =
      PropagateAlongPaths(*sub, ctx.paths, opts.max_row_nnz);
  ASSERT_EQ(f.blocks.size(), ctx.full_features.blocks.size());
  for (size_t p = 0; p < f.blocks.size(); ++p) {
    EXPECT_EQ(f.blocks[p].cols(), ctx.full_features.blocks[p].cols());
    EXPECT_EQ(f.blocks[p].rows(),
              sub->NodeCount(sub->target_type()));
  }
}

class ModelKindTest : public ::testing::TestWithParam<HgnnKind> {};

TEST_P(ModelKindTest, ForwardShapeAndDeterminism) {
  const HeteroGraph g = datasets::MakeToy(4);
  PropagateOptions popts;
  popts.max_hops = 2;
  const PropagatedFeatures f = PropagateFeatures(g, popts);
  std::vector<int64_t> dims;
  for (const auto& b : f.blocks) dims.push_back(b.cols());

  HgnnConfig cfg;
  cfg.kind = GetParam();
  cfg.hidden = 8;
  cfg.seed = 11;
  HgnnModel m1(cfg, dims, f.end_types, g.num_classes());
  HgnnModel m2(cfg, dims, f.end_types, g.num_classes());
  Matrix out1 = m1.Forward(f.blocks, /*train=*/false);
  Matrix out2 = m2.Forward(f.blocks, /*train=*/false);
  EXPECT_EQ(out1.rows(), g.NodeCount(g.target_type()));
  EXPECT_EQ(out1.cols(), g.num_classes());
  EXPECT_EQ(out1, out2);  // same seed, same params, same output
  EXPECT_GT(m1.NumParams(), 0);
}

TEST_P(ModelKindTest, GradCheck) {
  const HeteroGraph g = datasets::MakeToy(5);
  PropagateOptions popts;
  popts.max_hops = 2;
  popts.max_paths = 3;
  const PropagatedFeatures f = PropagateFeatures(g, popts);
  std::vector<int64_t> dims;
  for (const auto& b : f.blocks) dims.push_back(b.cols());

  HgnnConfig cfg;
  cfg.kind = GetParam();
  cfg.hidden = 4;
  cfg.dropout = 0.0f;
  cfg.seed = 13;
  HgnnModel model(cfg, dims, f.end_types, g.num_classes());

  auto loss_fn = [&]() {
    Matrix out = model.Forward(f.blocks, /*train=*/true);
    return nn::SoftmaxCrossEntropy(out, g.labels(), {}, nullptr);
  };

  model.ZeroGrad();
  Matrix out = model.Forward(f.blocks, true);
  Matrix dlogits;
  nn::SoftmaxCrossEntropy(out, g.labels(), {}, &dlogits);
  model.Backward(dlogits);

  int checked = 0;
  for (nn::Parameter* p : model.Params()) {
    for (int64_t r = 0; r < p->value.rows() && checked < 40; ++r) {
      for (int64_t c = 0; c < p->value.cols() && checked < 40; ++c) {
        const float orig = p->value.At(r, c);
        const float eps = 2e-3f;
        p->value.At(r, c) = orig + eps;
        const float hi = loss_fn();
        p->value.At(r, c) = orig - eps;
        const float lo = loss_fn();
        p->value.At(r, c) = orig;
        const float num = (hi - lo) / (2 * eps);
        // Relative tolerance: float32 central differences cross ReLU kinks,
        // and sum-fusion (HGB) amplifies the absolute error.
        const float tol = std::max(5e-3f, 0.06f * std::fabs(num));
        EXPECT_NEAR(p->grad.At(r, c), num, tol)
            << HgnnKindName(cfg.kind) << " param (" << r << "," << c << ")";
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 10);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ModelKindTest,
                         ::testing::Values(HgnnKind::kHeteroSGC,
                                           HgnnKind::kSeHGNN, HgnnKind::kHAN,
                                           HgnnKind::kHGB, HgnnKind::kHGT),
                         [](const auto& info) {
                           return HgnnKindName(info.param);
                         });

TEST(TrainerTest, WholeGraphBeatsChance) {
  const HeteroGraph g = datasets::MakeToy(6);
  PropagateOptions popts;
  popts.max_hops = 2;
  const EvalContext ctx = BuildEvalContext(g, popts);
  HgnnConfig cfg;
  cfg.hidden = 16;
  cfg.epochs = 80;
  const EvalMetrics m = WholeGraphBaseline(ctx, cfg);
  EXPECT_GT(m.test_accuracy, 1.2f / static_cast<float>(g.num_classes()));
  EXPECT_GT(m.train_seconds, 0.0);
  EXPECT_GT(m.epochs_run, 0);
}

TEST(TrainerTest, TrainOnSubgraphEvaluatesOnFull) {
  const HeteroGraph g = datasets::MakeToy(7);
  PropagateOptions popts;
  popts.max_hops = 2;
  const EvalContext ctx = BuildEvalContext(g, popts);
  std::vector<std::vector<int32_t>> keep(
      static_cast<size_t>(g.NumNodeTypes()));
  for (TypeId t = 0; t < g.NumNodeTypes(); ++t) {
    for (int32_t v = 0; v < g.NodeCount(t); v += 2) {
      keep[static_cast<size_t>(t)].push_back(v);
    }
  }
  auto sub = g.InducedSubgraph(keep);
  ASSERT_TRUE(sub.ok());
  HgnnConfig cfg;
  cfg.hidden = 16;
  cfg.epochs = 60;
  const EvalMetrics m = TrainAndEvaluate(ctx, *sub, cfg);
  EXPECT_GE(m.test_accuracy, 0.0f);
  EXPECT_LE(m.test_accuracy, 1.0f);
}

TEST(TrainerTest, TrainOnBlocksRunsOnSyntheticRows) {
  const HeteroGraph g = datasets::MakeToy(8);
  PropagateOptions popts;
  popts.max_hops = 2;
  const EvalContext ctx = BuildEvalContext(g, popts);
  // Synthetic data: 12 rows copied from real propagated rows.
  std::vector<Matrix> blocks;
  std::vector<int32_t> rows = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  for (const auto& b : ctx.full_features.blocks) {
    blocks.push_back(b.GatherRows(rows));
  }
  std::vector<int32_t> labels;
  for (int32_t r : rows) {
    labels.push_back(g.labels()[static_cast<size_t>(r)]);
  }
  HgnnConfig cfg;
  cfg.hidden = 8;
  cfg.epochs = 40;
  const EvalMetrics m = TrainOnBlocks(ctx, blocks, labels, cfg);
  EXPECT_GE(m.test_accuracy, 0.0f);
  EXPECT_LE(m.test_accuracy, 1.0f);
}

TEST(TrainerTest, DeterministicUnderSeed) {
  const HeteroGraph g = datasets::MakeToy(9);
  PropagateOptions popts;
  popts.max_hops = 2;
  const EvalContext ctx = BuildEvalContext(g, popts);
  HgnnConfig cfg;
  cfg.hidden = 8;
  cfg.epochs = 30;
  cfg.seed = 77;
  const EvalMetrics a = WholeGraphBaseline(ctx, cfg);
  const EvalMetrics b = WholeGraphBaseline(ctx, cfg);
  EXPECT_FLOAT_EQ(a.test_accuracy, b.test_accuracy);
}

}  // namespace
}  // namespace freehgc::hgnn
