#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "bench/loadgen/loadgen.h"
#include "common/rng.h"

namespace freehgc::loadgen {
namespace {

LoadSpec TestSpec() {
  LoadSpec spec;
  spec.seed = 1234;
  for (int c = 0; c < 10; ++c) {
    RequestClass cls;
    cls.name = "c" + std::to_string(c);
    cls.request.graph = "g";
    cls.request.seed = static_cast<uint64_t>(c + 1);
    spec.classes.push_back(cls);
  }
  spec.phases.push_back({"ramp", 0.2, 100.0, 400.0});
  spec.phases.push_back({"sustain", 0.3, 400.0, 400.0});
  return spec;
}

TEST(LoadgenTest, ScheduleIsAPureFunctionOfTheSpec) {
  const auto a = BuildSchedule(TestSpec());
  const auto b = BuildSchedule(TestSpec());
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // byte-identical arrivals, run to run

  LoadSpec reseeded = TestSpec();
  reseeded.seed = 99;
  EXPECT_NE(BuildSchedule(reseeded), a);
}

TEST(LoadgenTest, ScheduleIsSortedAndWellFormed) {
  const LoadSpec spec = TestSpec();
  const auto schedule = BuildSchedule(spec);
  ASSERT_FALSE(schedule.empty());
  int64_t prev_offset = 0;
  uint32_t prev_phase = 0;
  for (const Arrival& a : schedule) {
    EXPECT_GE(a.offset_ns, prev_offset);
    EXPECT_GE(a.phase_index, prev_phase);
    EXPECT_LT(a.phase_index, spec.phases.size());
    EXPECT_LT(a.class_index, spec.classes.size());
    prev_offset = a.offset_ns;
    prev_phase = a.phase_index;
  }
  // Total arrivals roughly match the offered rate x duration (the gaps
  // are exponential; 4x slack keeps this airtight across seeds).
  const double expected = 0.2 * 250.0 + 0.3 * 400.0;
  EXPECT_GT(static_cast<double>(schedule.size()), expected / 4.0);
  EXPECT_LT(static_cast<double>(schedule.size()), expected * 4.0);
}

TEST(LoadgenTest, PerClassCountsIdenticalAcrossClientThreadCounts) {
  const LoadSpec spec = TestSpec();
  const auto schedule = BuildSchedule(spec);

  // The submit stub sheds every class-0 arrival and succeeds otherwise,
  // so the report exercises outcome classification too.
  std::vector<RunReport> reports;
  for (int threads : {1, 2, 4}) {
    std::atomic<int64_t> submitted{0};
    const auto report = RunOpenLoop(
        spec, schedule, threads,
        [&](const serve::CondenseRequest& req, uint32_t class_index) {
          submitted.fetch_add(1);
          EXPECT_EQ(req.seed, class_index + 1);  // classes map through
          if (class_index == 0) return Status::ResourceExhausted("full");
          return Status::OK();
        });
    EXPECT_EQ(submitted.load(), static_cast<int64_t>(schedule.size()));
    EXPECT_EQ(report.issued, static_cast<int64_t>(schedule.size()));
    EXPECT_EQ(report.errors, 0);
    EXPECT_EQ(report.expired, 0);
    reports.push_back(report);
  }

  // Same schedule => identical per-class and per-phase outcome counts no
  // matter how many client threads replay it.
  for (size_t r = 1; r < reports.size(); ++r) {
    ASSERT_EQ(reports[r].phases.size(), reports[0].phases.size());
    for (size_t p = 0; p < reports[0].phases.size(); ++p) {
      const PhaseReport& a = reports[0].phases[p];
      const PhaseReport& b = reports[r].phases[p];
      EXPECT_EQ(a.issued, b.issued) << "phase " << a.name;
      EXPECT_EQ(a.ok, b.ok) << "phase " << a.name;
      EXPECT_EQ(a.shed, b.shed) << "phase " << a.name;
      EXPECT_EQ(a.per_class_issued, b.per_class_issued) << "phase " << a.name;
    }
  }

  // And those counts agree with the schedule itself.
  std::vector<int64_t> from_schedule(spec.classes.size(), 0);
  int64_t class0 = 0;
  for (const Arrival& a : schedule) {
    ++from_schedule[a.class_index];
    if (a.class_index == 0) ++class0;
  }
  std::vector<int64_t> from_report(spec.classes.size(), 0);
  int64_t shed = 0;
  for (const PhaseReport& pr : reports[0].phases) {
    for (size_t c = 0; c < pr.per_class_issued.size(); ++c) {
      from_report[c] += pr.per_class_issued[c];
    }
    shed += pr.shed;
  }
  EXPECT_EQ(from_report, from_schedule);
  EXPECT_EQ(shed, class0);
}

TEST(LoadgenTest, ParetoPickerSkewsTowardLowIndices) {
  const uint32_t items = 10000;
  const ParetoPicker picker(items);
  Rng rng(7);
  const int n = 20000;
  int top2pct = 0, top20pct = 0;
  for (int i = 0; i < n; ++i) {
    const uint32_t pick = picker.Pick(static_cast<uint32_t>(rng.NextU64()),
                                     static_cast<uint32_t>(rng.NextU64()));
    ASSERT_LT(pick, items);
    if (pick < items / 50) ++top2pct;
    if (pick < items / 5) ++top20pct;
  }
  // Binomial(6, 0.8) masses: groups 0-2 carry ~90% of the probability on
  // ~1.7% of the items. Thresholds leave room for sampling noise.
  EXPECT_GT(top2pct, n * 80 / 100);
  EXPECT_GT(top20pct, n * 95 / 100);
}

TEST(LoadgenTest, ParetoPickerHandlesTinyItemCounts) {
  // With 3 items every hot group's item range rounds down to empty and
  // spills forward: the distribution collapses to near-total mass on the
  // first representable item (the 80/20 curve's small-universe limit).
  // What must hold: picks stay in range, no division by zero, and the
  // hot head really is hot.
  const ParetoPicker picker(3);
  Rng rng(11);
  std::vector<int> hits(3, 0);
  for (int i = 0; i < 3000; ++i) {
    const uint32_t pick = picker.Pick(static_cast<uint32_t>(rng.NextU64()),
                                     static_cast<uint32_t>(rng.NextU64()));
    ASSERT_LT(pick, 3u);
    ++hits[pick];
  }
  EXPECT_GT(hits[0], 2900);
}

TEST(LoadgenTest, QuantileMsIsNearestRankOverRawSamples) {
  std::vector<int64_t> samples;
  for (int64_t ms = 1; ms <= 100; ++ms) samples.push_back(ms * 1000000);
  EXPECT_DOUBLE_EQ(QuantileMs(samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(QuantileMs(samples, 0.5), 51.0);
  EXPECT_DOUBLE_EQ(QuantileMs(samples, 0.99), 100.0);
  EXPECT_DOUBLE_EQ(QuantileMs(samples, 1.0), 100.0);
  EXPECT_DOUBLE_EQ(QuantileMs({}, 0.5), 0.0);
}

}  // namespace
}  // namespace freehgc::loadgen
