// Differential test harness for the optimized sparse kernels: every
// kernel in sparse/ops.h is compared bit-for-bit against the naive
// single-threaded references in sparse/reference.h, on a seeded corpus
// of adversarial shapes, across thread counts {1, 2, 4} and — for
// SpGEMM — with and without symbolic-plan reuse. Exact float equality
// throughout (EXPECT_EQ on the raw arrays, no tolerances): the
// optimized kernels' determinism contract promises the references'
// accumulation orders per output element, so any drift is a bug.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/mapped_file.h"
#include "common/rng.h"
#include "dense/matrix.h"
#include "exec/exec_context.h"
#include "sparse/csr.h"
#include "sparse/ops.h"
#include "sparse/reference.h"

namespace freehgc {
namespace {

CsrMatrix FromCooOrDie(int32_t rows, int32_t cols,
                       std::vector<CooEntry> entries) {
  auto res = CsrMatrix::FromCoo(rows, cols, std::move(entries));
  EXPECT_TRUE(res.ok());
  return std::move(res).value();
}

/// Uniformly random sparse matrix with values in [-2, 2).
CsrMatrix RandomSparse(int32_t rows, int32_t cols, double density,
                       uint64_t seed) {
  Rng rng(seed);
  std::vector<CooEntry> entries;
  for (int32_t r = 0; r < rows; ++r) {
    for (int32_t c = 0; c < cols; ++c) {
      if (rng.NextDouble() < density) {
        entries.push_back({r, c, rng.NextUniform(-2.0f, 2.0f)});
      }
    }
  }
  return FromCooOrDie(rows, cols, std::move(entries));
}

/// Power-law-ish row degrees: a handful of hub rows own most entries —
/// the degree profile where static chunking is most lopsided.
CsrMatrix PowerLawSparse(int32_t rows, int32_t cols, uint64_t seed) {
  Rng rng(seed);
  std::vector<CooEntry> entries;
  for (int32_t r = 0; r < rows; ++r) {
    const int32_t degree =
        r % 37 == 0 ? cols / 2 : static_cast<int32_t>(rng.NextBounded(4));
    for (int32_t k = 0; k < degree; ++k) {
      entries.push_back({r, static_cast<int32_t>(rng.NextBounded(
                                static_cast<uint64_t>(cols))),
                         rng.NextUniform(-2.0f, 2.0f)});
    }
  }
  return FromCooOrDie(rows, cols, std::move(entries));
}

/// Matrix with a band of empty rows in the middle and several zero-degree
/// trailing columns (never referenced by any entry).
CsrMatrix GappySparse(int32_t rows, int32_t cols, uint64_t seed) {
  Rng rng(seed);
  std::vector<CooEntry> entries;
  for (int32_t r = 0; r < rows; ++r) {
    if (r >= rows / 3 && r < 2 * rows / 3) continue;  // empty-row band
    const int32_t reachable = std::max(1, cols - 5);
    for (int32_t k = 0; k < 3; ++k) {
      entries.push_back({r, static_cast<int32_t>(rng.NextBounded(
                                static_cast<uint64_t>(reachable))),
                         rng.NextUniform(-2.0f, 2.0f)});
    }
  }
  return FromCooOrDie(rows, cols, std::move(entries));
}

/// Matrix holding explicitly stored zero values (and pairs that cancel
/// when multiplied), exercising the numeric pass's zero-drop compaction.
CsrMatrix ZeroValuedSparse(int32_t rows, int32_t cols) {
  std::vector<CooEntry> entries;
  for (int32_t r = 0; r < rows; ++r) {
    entries.push_back({r, r % cols, 0.0f});  // stored zero
    entries.push_back({r, (r + 1) % cols, r % 2 == 0 ? 1.5f : -1.5f});
  }
  return FromCooOrDie(rows, cols, std::move(entries));
}

struct CorpusEntry {
  std::string name;
  CsrMatrix m;
};

/// The seeded corpus: adversarial shapes for chunking, scatter, and
/// compaction paths.
std::vector<CorpusEntry> Corpus() {
  std::vector<CorpusEntry> corpus;
  corpus.push_back({"power_law_square", PowerLawSparse(300, 300, 7)});
  corpus.push_back({"rect_wide", RandomSparse(40, 500, 0.05, 11)});
  corpus.push_back({"rect_tall", RandomSparse(500, 40, 0.05, 13)});
  corpus.push_back({"empty_rows_zero_cols", GappySparse(200, 64, 17)});
  corpus.push_back({"all_empty", CsrMatrix(50, 30)});  // zero nnz
  corpus.push_back({"stored_zeros", ZeroValuedSparse(60, 60)});
  corpus.push_back({"one_by_n", RandomSparse(1, 400, 0.3, 19)});
  corpus.push_back({"n_by_one", RandomSparse(400, 1, 0.3, 23)});
  return corpus;
}

/// Test-local SpGemmPlanCache: memoizes one plan per operand pair by
/// address (sufficient inside a single test body).
class TestPlanCache : public sparse::SpGemmPlanCache {
 public:
  const sparse::SpGemmPlan& Plan(const CsrMatrix& a, const CsrMatrix& b,
                                 exec::ExecContext* ctx) override {
    const auto key = std::make_pair(&a, &b);
    auto it = plans_.find(key);
    if (it == plans_.end()) {
      it = plans_
               .emplace(key, std::make_unique<sparse::SpGemmPlan>(
                                 sparse::SpGemmSymbolic(a, b, ctx)))
               .first;
    } else {
      ++hits_;
    }
    return *it->second;
  }
  int hits() const { return hits_; }

 private:
  std::map<std::pair<const CsrMatrix*, const CsrMatrix*>,
           std::unique_ptr<sparse::SpGemmPlan>>
      plans_;
  int hits_ = 0;
};

template <typename T>
std::vector<T> ToVec(std::span<const T> s) {
  return {s.begin(), s.end()};
}

void ExpectBitIdentical(const CsrMatrix& got, const CsrMatrix& want,
                        const std::string& context) {
  ASSERT_EQ(got.rows(), want.rows()) << context;
  ASSERT_EQ(got.cols(), want.cols()) << context;
  EXPECT_EQ(ToVec(got.indptr()), ToVec(want.indptr())) << context;
  EXPECT_EQ(ToVec(got.indices()), ToVec(want.indices())) << context;
  // Exact, no tolerance.
  EXPECT_EQ(ToVec(got.values()), ToVec(want.values())) << context;
}

void ExpectValid(const CsrMatrix& m, const std::string& context) {
  const Status s = m.Validate();
  EXPECT_TRUE(s.ok()) << context << ": " << s.ToString();
}

/// Thread counts every kernel must agree across. 1 doubles as the "is
/// the parallel path value-preserving at all" anchor.
constexpr int kThreadCounts[] = {1, 2, 4};

TEST(SparseReferenceTest, TransposeMatchesReference) {
  for (const auto& e : Corpus()) {
    const CsrMatrix want = sparse::reference::TransposeRef(e.m);
    ExpectValid(want, e.name + " reference");
    for (int threads : kThreadCounts) {
      exec::ExecContext ex(threads);
      const CsrMatrix got = sparse::Transpose(e.m, &ex);
      const std::string context =
          e.name + " threads=" + std::to_string(threads);
      ExpectValid(got, context);
      ExpectBitIdentical(got, want, context);
    }
  }
}

TEST(SparseReferenceTest, NormalizeMatchesReference) {
  for (const auto& e : Corpus()) {
    const CsrMatrix want_row = sparse::reference::RowNormalizeRef(e.m);
    for (int threads : kThreadCounts) {
      exec::ExecContext ex(threads);
      const std::string context =
          e.name + " threads=" + std::to_string(threads);
      const CsrMatrix got_row = sparse::RowNormalize(e.m, &ex);
      ExpectValid(got_row, context);
      ExpectBitIdentical(got_row, want_row, "row_normalize " + context);
      if (e.m.rows() == e.m.cols()) {
        const CsrMatrix want_sym = sparse::reference::SymNormalizeRef(e.m);
        const CsrMatrix got_sym = sparse::SymNormalize(e.m, &ex);
        ExpectValid(got_sym, context);
        ExpectBitIdentical(got_sym, want_sym, "sym_normalize " + context);
      }
    }
  }
}

TEST(SparseReferenceTest, SpGemmMatchesReferenceAcrossThreadsAndPlanReuse) {
  for (const auto& e : Corpus()) {
    // Square the matrix against its own transpose so every corpus shape
    // yields a composable pair (m x n) * (n x m).
    const CsrMatrix bt = sparse::reference::TransposeRef(e.m);
    for (int64_t budget : {int64_t{0}, int64_t{8}}) {
      const CsrMatrix want = sparse::reference::SpGemmRef(e.m, bt, budget);
      ExpectValid(want, e.name + " reference");
      for (int threads : kThreadCounts) {
        exec::ExecContext ex(threads);
        const std::string context = e.name +
                                    " budget=" + std::to_string(budget) +
                                    " threads=" + std::to_string(threads);
        // Plan reuse off: fresh symbolic pass inside SpGemm.
        const CsrMatrix cold = sparse::SpGemm(e.m, bt, budget, &ex);
        ExpectValid(cold, context + " cold");
        ExpectBitIdentical(cold, want, context + " cold");
        // Plan reuse on: first call populates, second is served the
        // memoized plan. Both must equal the reference.
        TestPlanCache plans;
        const CsrMatrix warm0 =
            sparse::SpGemm(e.m, bt, budget, &ex, &plans);
        const CsrMatrix warm1 =
            sparse::SpGemm(e.m, bt, budget, &ex, &plans);
        EXPECT_EQ(plans.hits(), 1) << context;
        ExpectValid(warm1, context + " warm");
        ExpectBitIdentical(warm0, want, context + " plan-miss");
        ExpectBitIdentical(warm1, want, context + " plan-hit");
      }
    }
  }
}

TEST(SparseReferenceTest, SpMmDenseMatchesReference) {
  for (const auto& e : Corpus()) {
    Rng rng(101);
    // 70 columns straddles the 64-wide cache block (one full block plus
    // a ragged tail).
    Matrix x(e.m.cols(), 70);
    for (int64_t i = 0; i < x.size(); ++i) {
      x.data()[i] = rng.NextUniform(-1.0f, 1.0f);
    }
    Matrix xt(e.m.rows(), 70);
    for (int64_t i = 0; i < xt.size(); ++i) {
      xt.data()[i] = rng.NextUniform(-1.0f, 1.0f);
    }
    const Matrix want = sparse::reference::SpMmDenseRef(e.m, x);
    const Matrix want_t = sparse::reference::SpMmDenseTRef(e.m, xt);
    for (int threads : kThreadCounts) {
      exec::ExecContext ex(threads);
      const std::string context =
          e.name + " threads=" + std::to_string(threads);
      EXPECT_TRUE(sparse::SpMmDense(e.m, x, &ex) == want) << context;
      EXPECT_TRUE(sparse::SpMmDenseT(e.m, xt, &ex) == want_t) << context;
    }
  }
}

TEST(SparseReferenceTest, SpMvMatchesReference) {
  for (const auto& e : Corpus()) {
    Rng rng(103);
    std::vector<float> x(static_cast<size_t>(e.m.cols()));
    for (auto& v : x) v = rng.NextUniform(-1.0f, 1.0f);
    std::vector<float> xt(static_cast<size_t>(e.m.rows()));
    for (auto& v : xt) v = rng.NextUniform(-1.0f, 1.0f);
    const std::vector<float> want = sparse::reference::SpMvRef(e.m, x);
    const std::vector<float> want_t = sparse::reference::SpMvTRef(e.m, xt);
    for (int threads : kThreadCounts) {
      exec::ExecContext ex(threads);
      const std::string context =
          e.name + " threads=" + std::to_string(threads);
      EXPECT_EQ(sparse::SpMv(e.m, x, &ex), want) << context;
      EXPECT_EQ(sparse::SpMvT(e.m, xt, &ex), want_t) << context;
    }
  }
}

TEST(SparseReferenceTest, PprScoresMatchesReference) {
  // tol = 0 pins both sides to exactly max_iters iterations: the
  // optimized kernel's chunked double reduction associates the L1 delta
  // differently from the reference's sequential fold, so a nonzero tol
  // could stop them on different iterations even though every pi update
  // is bit-identical.
  const CsrMatrix a =
      sparse::reference::SymNormalizeRef(PowerLawSparse(250, 250, 29));
  std::vector<float> teleport(250, 1.0f / 250.0f);
  const std::vector<float> want =
      sparse::reference::PprScoresRef(a, teleport, 0.15f, 20, 0.0f);
  for (int threads : kThreadCounts) {
    exec::ExecContext ex(threads);
    EXPECT_EQ(sparse::PprScores(a, teleport, 0.15f, 20, 0.0f, &ex), want)
        << "threads=" << threads;
  }
}

TEST(SparseReferenceTest, SymbolicPlanIsBudgetIndependentSuperset) {
  const CsrMatrix a = PowerLawSparse(120, 120, 31);
  const CsrMatrix b = sparse::reference::TransposeRef(a);
  const sparse::SpGemmPlan plan = sparse::SpGemmSymbolic(a, b);
  // One plan serves every budget.
  for (int64_t budget : {int64_t{0}, int64_t{4}, int64_t{32}}) {
    const CsrMatrix want = sparse::reference::SpGemmRef(a, b, budget);
    const CsrMatrix got = sparse::SpGemmNumeric(a, b, plan, budget);
    ExpectBitIdentical(got, want, "budget=" + std::to_string(budget));
    // The plan's structure contains every surviving output entry.
    for (int32_t r = 0; r < got.rows(); ++r) {
      for (int32_t c : got.RowIndices(r)) {
        const auto row = plan.indices.begin() + plan.indptr[r];
        const auto row_end = plan.indices.begin() + plan.indptr[r + 1];
        EXPECT_TRUE(std::binary_search(row, row_end, c));
      }
    }
  }
}

TEST(SparseReferenceTest, PruningTieBreakKeepsSmallerColumns) {
  // Row 0 of a*b has four entries of equal magnitude 1.0 at columns
  // 0..3. With max_row_nnz = 2 the pinned rule (|value| desc, then
  // smaller column) must keep columns {0, 1} — at every thread count,
  // with and without a plan, and regardless of sign.
  std::vector<CooEntry> ae, be;
  for (int32_t c = 0; c < 4; ++c) {
    ae.push_back({0, c, 1.0f});
    be.push_back({c, c, c % 2 == 0 ? 1.0f : -1.0f});
  }
  const CsrMatrix a = FromCooOrDie(1, 4, std::move(ae));
  const CsrMatrix b = FromCooOrDie(4, 4, std::move(be));
  for (int threads : kThreadCounts) {
    exec::ExecContext ex(threads);
    TestPlanCache plans;
    for (sparse::SpGemmPlanCache* p :
         {static_cast<sparse::SpGemmPlanCache*>(nullptr),
          static_cast<sparse::SpGemmPlanCache*>(&plans)}) {
      const CsrMatrix got = sparse::SpGemm(a, b, 2, &ex, p);
      ASSERT_EQ(got.RowNnz(0), 2);
      EXPECT_EQ(got.RowIndices(0)[0], 0);
      EXPECT_EQ(got.RowIndices(0)[1], 1);
      EXPECT_EQ(got.RowValues(0)[0], 1.0f);
      EXPECT_EQ(got.RowValues(0)[1], -1.0f);
    }
  }
}

TEST(SparseReferenceTest, MappedViewsAreBitIdenticalToOwnedInKernels) {
  // Differential over storage backing: the same CSR once owned and once
  // as FromView spans over an actual mmap'd file (the v3 container load
  // path). Every kernel must produce bit-identical output from either —
  // kernels read through ArrayRef::span() and never see the backing.
  const CsrMatrix a = RandomSparse(120, 100, 0.06, 21);
  const CsrMatrix b = RandomSparse(100, 90, 0.06, 22);

  const std::string path = "/tmp/freehgc_test_sparse_mapped.bin";
  {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    // indptr first keeps every array naturally aligned in the mapping:
    // (rows + 1) * 8 is 8-aligned, the int32/float arrays need only 4.
    std::fwrite(a.indptr().data(), sizeof(int64_t), a.indptr().size(), f);
    std::fwrite(a.indices().data(), sizeof(int32_t), a.indices().size(), f);
    std::fwrite(a.values().data(), sizeof(float), a.values().size(), f);
    std::fclose(f);
  }
  auto mf = MappedFile::OpenShared(path);
  ASSERT_TRUE(mf.ok());
  const auto* base = (*mf)->data();
  const size_t indptr_bytes = a.indptr().size() * sizeof(int64_t);
  const size_t indices_bytes = a.indices().size() * sizeof(int32_t);
  auto view = CsrMatrix::FromView(
      a.rows(), a.cols(),
      {reinterpret_cast<const int64_t*>(base), a.indptr().size()},
      {reinterpret_cast<const int32_t*>(base + indptr_bytes),
       a.indices().size()},
      {reinterpret_cast<const float*>(base + indptr_bytes + indices_bytes),
       a.values().size()},
      *mf);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->values().data(),
            reinterpret_cast<const float*>(base + indptr_bytes +
                                           indices_bytes));  // zero-copy

  EXPECT_TRUE(*view == a);
  for (int threads : kThreadCounts) {
    exec::ExecContext ex(threads);
    EXPECT_TRUE(sparse::SpGemm(*view, b, 0, &ex) ==
                sparse::SpGemm(a, b, 0, &ex));
    EXPECT_TRUE(sparse::Transpose(*view, &ex) == sparse::Transpose(a, &ex));
    EXPECT_TRUE(sparse::RowNormalize(*view, &ex) ==
                sparse::RowNormalize(a, &ex));
  }

  // The kernels above must not have detached the view.
  EXPECT_EQ(view->values().data(),
            reinterpret_cast<const float*>(base + indptr_bytes +
                                           indices_bytes));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace freehgc
