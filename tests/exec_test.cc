#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "core/freehgc.h"
#include "datasets/generator.h"
#include "exec/exec_context.h"
#include "exec/thread_pool.h"
#include "metapath/metapath.h"
#include "sparse/ops.h"

namespace freehgc {
namespace {

// --- ThreadPool -----------------------------------------------------------

TEST(ThreadPoolTest, StartupAndShutdown) {
  for (int size : {1, 2, 4, 8}) {
    exec::ThreadPool pool(size);
    EXPECT_EQ(pool.size(), size);
  }
  // Degenerate sizes clamp to one worker (the caller).
  exec::ThreadPool tiny(0);
  EXPECT_EQ(tiny.size(), 1);
  exec::ThreadPool negative(-3);
  EXPECT_EQ(negative.size(), 1);
}

TEST(ThreadPoolTest, InvokeRunsEveryWorkerExactlyOnce) {
  exec::ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::atomic<int>> hits(4);
    for (auto& h : hits) h = 0;
    pool.ParallelInvoke([&](int worker) {
      ASSERT_GE(worker, 0);
      ASSERT_LT(worker, 4);
      ++hits[static_cast<size_t>(worker)];
    });
    for (const auto& h : hits) EXPECT_EQ(h, 1);
  }
}

// --- ParallelFor ----------------------------------------------------------

TEST(ExecContextTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    exec::ExecContext ex(threads);
    for (int64_t n : {1, 7, 100, 1000, 10000}) {
      for (int64_t grain : {1, 16, 512}) {
        std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
        for (auto& h : hits) h = 0;
        ex.ParallelFor(n, grain,
                       [&](int64_t begin, int64_t end, exec::Workspace&) {
                         for (int64_t i = begin; i < end; ++i) {
                           ++hits[static_cast<size_t>(i)];
                         }
                       });
        for (int64_t i = 0; i < n; ++i) {
          ASSERT_EQ(hits[static_cast<size_t>(i)], 1)
              << "index " << i << " n=" << n << " grain=" << grain
              << " threads=" << threads;
        }
      }
    }
  }
}

TEST(ExecContextTest, ChunkLayoutIgnoresThreadCount) {
  // The chunk layout is a pure function of (n, grain); constructing
  // contexts with different worker counts must not change it.
  for (int64_t n : {1, 100, 12345}) {
    for (int64_t grain : {1, 64}) {
      const int64_t chunk = exec::ExecContext::ChunkSize(n, grain);
      EXPECT_GE(chunk, grain);
      EXPECT_EQ(exec::ExecContext::NumChunks(n, grain),
                (n + chunk - 1) / chunk);
      EXPECT_LE(exec::ExecContext::NumChunks(n, grain), 256);
    }
  }
}

TEST(ExecContextTest, ParallelForPropagatesException) {
  for (int threads : {1, 4}) {
    exec::ExecContext ex(threads);
    EXPECT_THROW(
        ex.ParallelFor(1000, 1,
                       [&](int64_t begin, int64_t, exec::Workspace&) {
                         if (begin >= 500) {
                           throw std::runtime_error("chunk failure");
                         }
                       }),
        std::runtime_error);
    // The pool survives an exception and keeps working.
    std::atomic<int64_t> sum{0};
    ex.ParallelFor(100, 1, [&](int64_t b, int64_t e, exec::Workspace&) {
      for (int64_t i = b; i < e; ++i) sum += i;
    });
    EXPECT_EQ(sum, 99 * 100 / 2);
  }
}

TEST(ExecContextTest, NestedParallelForRunsSeriallyAndTerminates) {
  // A kernel issuing ParallelFor from inside another ParallelFor body
  // (e.g. sparse::Transpose under the per-relation loop of
  // EnsureReverseRelations) must not re-enter the pool's single-driver
  // invoke — it degrades to a serial loop on the calling thread. Before
  // the InParallelRegion guard this deadlocked at >= 2 threads whenever
  // the inner range spanned multiple chunks.
  for (int threads : {1, 2, 4}) {
    exec::ExecContext ex(threads);
    const int64_t outer = 8;
    const int64_t inner = 100000;  // multiple chunks at grain 1
    std::vector<int64_t> sums(static_cast<size_t>(outer), 0);
    ex.ParallelFor(outer, 1, [&](int64_t ob, int64_t oe, exec::Workspace&) {
      for (int64_t o = ob; o < oe; ++o) {
        EXPECT_TRUE(exec::ThreadPool::InParallelRegion());
        std::atomic<int64_t> sum{0};
        ex.ParallelFor(inner, 1,
                       [&](int64_t b, int64_t e, exec::Workspace&) {
                         for (int64_t i = b; i < e; ++i) sum += i;
                       });
        sums[static_cast<size_t>(o)] = sum;
      }
    });
    EXPECT_FALSE(exec::ThreadPool::InParallelRegion());
    for (int64_t o = 0; o < outer; ++o) {
      EXPECT_EQ(sums[static_cast<size_t>(o)], inner * (inner - 1) / 2)
          << "outer " << o << " threads " << threads;
    }
  }
}

TEST(ExecContextTest, NestedWorkspaceIsDistinctFromWorkerArenas) {
  // The nested serial path hands out NestedWorkspace(), never the
  // enclosing chunk's per-worker arena: a kernel mid-use of its own
  // workspace can safely call a workspace-using kernel.
  exec::ExecContext ex(2);
  std::atomic<bool> aliased{false};
  ex.ParallelFor(4, 1, [&](int64_t ob, int64_t oe, exec::Workspace& outer) {
    for (int64_t o = ob; o < oe; ++o) {
      ex.ParallelFor(2, 1, [&](int64_t, int64_t, exec::Workspace& nested) {
        if (&nested == &outer) aliased = true;
      });
    }
  });
  EXPECT_FALSE(aliased);
}

TEST(ExecContextTest, ParallelReduceMatchesSequentialFold) {
  for (int threads : {1, 2, 4}) {
    exec::ExecContext ex(threads);
    const int64_t n = 5000;
    const double got = ex.ParallelReduce(
        n, 64, 0.0,
        [](int64_t begin, int64_t end, exec::Workspace&) {
          double s = 0.0;
          for (int64_t i = begin; i < end; ++i) s += 1.0 / (1.0 + i);
          return s;
        },
        [](double acc, double part) { return acc + part; });
    // Recompute with the same chunk layout sequentially: must be
    // bit-identical, not just approximately equal.
    const int64_t chunk = exec::ExecContext::ChunkSize(n, 64);
    double want = 0.0;
    for (int64_t b = 0; b < n; b += chunk) {
      double s = 0.0;
      const int64_t e = std::min(n, b + chunk);
      for (int64_t i = b; i < e; ++i) s += 1.0 / (1.0 + i);
      want += s;
    }
    EXPECT_EQ(got, want);
  }
}

TEST(ExecContextTest, WorkspaceInvariants) {
  exec::Workspace ws;
  auto& accum = ws.ZeroedAccum(64);
  ASSERT_GE(accum.size(), 64u);
  for (float v : accum) EXPECT_EQ(v, 0.0f);
  accum[3] = 7.0f;
  accum[3] = 0.0f;  // kernel contract: re-zero touched entries
  auto& touched = ws.Touched();
  EXPECT_TRUE(touched.empty());
  touched.push_back(9);
  EXPECT_TRUE(ws.Touched().empty());  // cleared on every handout
  EXPECT_EQ(ws.F32(10, 2.5f).size(), 10u);
  EXPECT_EQ(ws.F32(10, 2.5f)[9], 2.5f);
  EXPECT_EQ(ws.I32(5, -1)[4], -1);
}

TEST(ExecContextTest, FreehgcThreadsEnvOverride) {
  ::setenv("FREEHGC_THREADS", "3", 1);
  EXPECT_EQ(exec::DefaultNumThreads(), 3);
  exec::ExecContext ex(0);
  EXPECT_EQ(ex.num_threads(), 3);
  ::setenv("FREEHGC_THREADS", "not-a-number", 1);
  EXPECT_GE(exec::DefaultNumThreads(), 1);
  ::unsetenv("FREEHGC_THREADS");
  EXPECT_GE(exec::DefaultNumThreads(), 1);
}

// --- Bit-identical results across thread counts ---------------------------

TEST(DeterminismTest, SpGemmBitIdenticalAcrossThreadCounts) {
  const HeteroGraph g = datasets::MakeAcm(7, 0.3);
  const CsrMatrix a = sparse::RowNormalize(g.relation(1).adj);
  const CsrMatrix b = sparse::Transpose(a);
  exec::ExecContext ex1(1);
  const CsrMatrix ref = sparse::SpGemm(a, b, 0, &ex1);
  const CsrMatrix ref_capped = sparse::SpGemm(a, b, 32, &ex1);
  for (int threads : {2, 4}) {
    exec::ExecContext ex(threads);
    EXPECT_TRUE(sparse::SpGemm(a, b, 0, &ex) == ref) << threads;
    EXPECT_TRUE(sparse::SpGemm(a, b, 32, &ex) == ref_capped) << threads;
  }
}

TEST(DeterminismTest, ComposeAdjacencyBitIdenticalAcrossThreadCounts) {
  const HeteroGraph g = datasets::MakeDblp(3, 0.3);
  MetaPathOptions opts;
  opts.max_hops = 3;
  opts.max_paths = 6;
  const auto paths = EnumerateMetaPaths(g, g.target_type(), opts);
  ASSERT_FALSE(paths.empty());
  exec::ExecContext ex1(1);
  std::vector<CsrMatrix> ref;
  for (const auto& p : paths) {
    ref.push_back(ComposeAdjacency(g, p, 256, &ex1));
  }
  for (int threads : {2, 4}) {
    exec::ExecContext ex(threads);
    for (size_t i = 0; i < paths.size(); ++i) {
      EXPECT_TRUE(ComposeAdjacency(g, paths[i], 256, &ex) == ref[i])
          << "path " << i << " threads " << threads;
    }
  }
}

void ExpectGraphsIdentical(const HeteroGraph& a, const HeteroGraph& b) {
  ASSERT_EQ(a.NumNodeTypes(), b.NumNodeTypes());
  ASSERT_EQ(a.NumRelations(), b.NumRelations());
  for (TypeId t = 0; t < a.NumNodeTypes(); ++t) {
    EXPECT_EQ(a.NodeCount(t), b.NodeCount(t)) << a.TypeName(t);
    EXPECT_TRUE(a.Features(t) == b.Features(t)) << a.TypeName(t);
  }
  for (RelationId r = 0; r < a.NumRelations(); ++r) {
    EXPECT_EQ(a.relation(r).name, b.relation(r).name);
    EXPECT_TRUE(a.relation(r).adj == b.relation(r).adj)
        << a.relation(r).name;
  }
  EXPECT_EQ(a.labels(), b.labels());
}

TEST(DeterminismTest, CondenseBitIdenticalAcrossThreadCounts) {
  const HeteroGraph g = datasets::MakeAcm(1, 0.3);
  core::FreeHgcOptions opts;
  opts.ratio = 0.05;
  opts.max_hops = 2;

  opts.num_threads = 1;
  auto ref = core::Condense(g, opts);
  ASSERT_TRUE(ref.ok());

  for (int threads : {2, 4}) {
    opts.num_threads = threads;
    auto got = core::Condense(g, opts);
    ASSERT_TRUE(got.ok()) << threads;
    EXPECT_EQ(got.value().selected_target, ref.value().selected_target)
        << threads;
    ASSERT_EQ(got.value().kept_per_type.size(),
              ref.value().kept_per_type.size());
    for (size_t t = 0; t < ref.value().kept_per_type.size(); ++t) {
      EXPECT_EQ(got.value().kept_per_type[t], ref.value().kept_per_type[t])
          << "type " << t << " threads " << threads;
    }
    ExpectGraphsIdentical(got.value().graph, ref.value().graph);
  }
}

TEST(DeterminismTest, GeneratorBitIdenticalAcrossThreadCounts) {
  exec::ExecContext ex1(1);
  exec::ExecContext ex4(4);
  const HeteroGraph a = datasets::MakeToy(11);
  auto b = datasets::MakeByName("toy", 11, 1.0, &ex4);
  ASSERT_TRUE(b.ok());
  ExpectGraphsIdentical(a, b.value());
  const HeteroGraph c = datasets::MakeAcm(5, 0.2, &ex1);
  const HeteroGraph d = datasets::MakeAcm(5, 0.2, &ex4);
  ExpectGraphsIdentical(c, d);
}

}  // namespace
}  // namespace freehgc
