#include <gtest/gtest.h>
#include <functional>

#include <cmath>

#include "common/rng.h"
#include "nn/nn.h"

namespace freehgc::nn {
namespace {

/// Central-difference numerical gradient of `loss_fn` w.r.t. parameter p.
float NumericalGrad(Parameter& p, int64_t r, int64_t c,
                    const std::function<float()>& loss_fn, float eps = 1e-3f) {
  const float orig = p.value.At(r, c);
  p.value.At(r, c) = orig + eps;
  const float hi = loss_fn();
  p.value.At(r, c) = orig - eps;
  const float lo = loss_fn();
  p.value.At(r, c) = orig;
  return (hi - lo) / (2.0f * eps);
}

TEST(SoftmaxCrossEntropyTest, UniformLogitsGiveLogC) {
  Matrix logits(4, 3);  // all-zero logits -> uniform distribution
  std::vector<int32_t> labels = {0, 1, 2, 0};
  const float loss = SoftmaxCrossEntropy(logits, labels, {}, nullptr);
  EXPECT_NEAR(loss, std::log(3.0f), 1e-5f);
}

TEST(SoftmaxCrossEntropyTest, PerfectPredictionLowLoss) {
  Matrix logits(2, 2);
  logits.At(0, 0) = 20.0f;
  logits.At(1, 1) = 20.0f;
  const float loss = SoftmaxCrossEntropy(logits, {0, 1}, {}, nullptr);
  EXPECT_LT(loss, 1e-3f);
}

TEST(SoftmaxCrossEntropyTest, IndexRestrictsRows) {
  Matrix logits(2, 2);
  logits.At(0, 0) = 20.0f;  // row 0 perfect
  logits.At(1, 0) = 20.0f;  // row 1 totally wrong
  const float loss0 = SoftmaxCrossEntropy(logits, {0, 1}, {0}, nullptr);
  const float loss1 = SoftmaxCrossEntropy(logits, {0, 1}, {1}, nullptr);
  EXPECT_LT(loss0, 0.01f);
  EXPECT_GT(loss1, 5.0f);
}

TEST(SoftmaxCrossEntropyTest, GradientMatchesNumerical) {
  Rng rng(1);
  Matrix logits(3, 4);
  logits.FillGaussian(rng, 1.0f);
  std::vector<int32_t> labels = {1, 3, 0};
  Matrix dlogits;
  SoftmaxCrossEntropy(logits, labels, {}, &dlogits);
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t c = 0; c < 4; ++c) {
      const float orig = logits.At(r, c);
      const float eps = 1e-3f;
      logits.At(r, c) = orig + eps;
      const float hi = SoftmaxCrossEntropy(logits, labels, {}, nullptr);
      logits.At(r, c) = orig - eps;
      const float lo = SoftmaxCrossEntropy(logits, labels, {}, nullptr);
      logits.At(r, c) = orig;
      EXPECT_NEAR(dlogits.At(r, c), (hi - lo) / (2 * eps), 1e-3f);
    }
  }
}

TEST(LinearTest, GradCheck) {
  Rng rng(2);
  Linear layer(3, 2, rng);
  Matrix x(5, 3);
  x.FillGaussian(rng, 1.0f);
  std::vector<int32_t> labels = {0, 1, 0, 1, 1};

  auto loss_fn = [&]() {
    Matrix out = layer.Forward(x);
    return SoftmaxCrossEntropy(out, labels, {}, nullptr);
  };

  // Analytic gradients.
  for (Parameter* p : layer.Params()) p->ZeroGrad();
  Matrix out = layer.Forward(x);
  Matrix dlogits;
  SoftmaxCrossEntropy(out, labels, {}, &dlogits);
  Matrix dx = layer.Backward(dlogits);

  auto params = layer.Params();
  Parameter& w = *params[0];
  Parameter& b = *params[1];
  for (int64_t r = 0; r < w.value.rows(); ++r) {
    for (int64_t c = 0; c < w.value.cols(); ++c) {
      EXPECT_NEAR(w.grad.At(r, c), NumericalGrad(w, r, c, loss_fn), 2e-3f);
    }
  }
  for (int64_t c = 0; c < b.value.cols(); ++c) {
    EXPECT_NEAR(b.grad.At(0, c), NumericalGrad(b, 0, c, loss_fn), 2e-3f);
  }
  // dx check via perturbing x.
  for (int64_t r = 0; r < 2; ++r) {
    for (int64_t c = 0; c < 3; ++c) {
      const float orig = x.At(r, c);
      const float eps = 1e-3f;
      x.At(r, c) = orig + eps;
      const float hi = loss_fn();
      x.At(r, c) = orig - eps;
      const float lo = loss_fn();
      x.At(r, c) = orig;
      EXPECT_NEAR(dx.At(r, c), (hi - lo) / (2 * eps), 2e-3f);
    }
  }
}

TEST(ReLUTest, ForwardAndBackward) {
  ReLU relu;
  Matrix x(1, 4);
  x.At(0, 0) = -1.0f;
  x.At(0, 1) = 2.0f;
  x.At(0, 2) = 0.0f;
  x.At(0, 3) = 5.0f;
  Matrix y = relu.Forward(x);
  EXPECT_FLOAT_EQ(y.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.At(0, 1), 2.0f);
  Matrix dout(1, 4);
  dout.Fill(1.0f);
  Matrix dx = relu.Backward(dout);
  EXPECT_FLOAT_EQ(dx.At(0, 0), 0.0f);  // blocked at negative input
  EXPECT_FLOAT_EQ(dx.At(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(dx.At(0, 2), 0.0f);  // blocked at zero
  EXPECT_FLOAT_EQ(dx.At(0, 3), 1.0f);
}

TEST(DropoutTest, IdentityAtEval) {
  Dropout d(0.5f, 1);
  Matrix x(3, 3);
  x.Fill(2.0f);
  EXPECT_EQ(d.Forward(x, /*train=*/false), x);
}

TEST(DropoutTest, PreservesExpectation) {
  Dropout d(0.4f, 2);
  Matrix x(100, 100);
  x.Fill(1.0f);
  Matrix y = d.Forward(x, /*train=*/true);
  double sum = 0.0;
  int64_t zeros = 0;
  for (int64_t i = 0; i < y.size(); ++i) {
    sum += y.data()[i];
    if (y.data()[i] == 0.0f) ++zeros;
  }
  EXPECT_NEAR(sum / y.size(), 1.0, 0.05);  // inverted dropout keeps E[x]
  EXPECT_NEAR(static_cast<double>(zeros) / y.size(), 0.4, 0.05);
}

TEST(MlpTest, GradCheckTwoLayer) {
  Rng rng(3);
  Mlp mlp({4, 5, 3}, /*dropout=*/0.0f, /*seed=*/7);
  Matrix x(6, 4);
  x.FillGaussian(rng, 1.0f);
  std::vector<int32_t> labels = {0, 1, 2, 0, 1, 2};

  auto loss_fn = [&]() {
    Matrix out = mlp.Forward(x, /*train=*/true);
    return SoftmaxCrossEntropy(out, labels, {}, nullptr);
  };

  mlp.ZeroGrad();
  Matrix out = mlp.Forward(x, true);
  Matrix dlogits;
  SoftmaxCrossEntropy(out, labels, {}, &dlogits);
  mlp.Backward(dlogits);

  int checked = 0;
  for (Parameter* p : mlp.Params()) {
    for (int64_t r = 0; r < p->value.rows() && checked < 60; ++r) {
      for (int64_t c = 0; c < p->value.cols() && checked < 60; ++c) {
        const float num = NumericalGrad(*p, r, c, loss_fn);
        EXPECT_NEAR(p->grad.At(r, c), num, 3e-3f)
            << "param entry (" << r << "," << c << ")";
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 30);
  EXPECT_GT(mlp.NumParams(), 0);
}

TEST(AdamTest, ReducesQuadraticLoss) {
  // Minimize ||w - 3||^2 with Adam; gradient = 2(w - 3).
  Parameter w(1, 1);
  w.value.At(0, 0) = 0.0f;
  Adam opt(0.1f);
  for (int i = 0; i < 300; ++i) {
    w.grad.At(0, 0) = 2.0f * (w.value.At(0, 0) - 3.0f);
    opt.Step({&w});
  }
  EXPECT_NEAR(w.value.At(0, 0), 3.0f, 0.05f);
  EXPECT_EQ(opt.step_count(), 300);
}

TEST(MlpTest, TrainingReducesLossOnSeparableData) {
  Rng rng(4);
  const int n = 60;
  Matrix x(n, 2);
  std::vector<int32_t> labels(n);
  for (int i = 0; i < n; ++i) {
    labels[i] = i % 2;
    x.At(i, 0) = rng.NextGaussian(labels[i] == 0 ? -2.0f : 2.0f, 0.5f);
    x.At(i, 1) = rng.NextGaussian(0.0f, 0.5f);
  }
  Mlp mlp({2, 8, 2}, 0.0f, 5);
  Adam opt(0.05f);
  auto params = mlp.Params();
  float first_loss = 0.0f, last_loss = 0.0f;
  for (int epoch = 0; epoch < 100; ++epoch) {
    mlp.ZeroGrad();
    Matrix out = mlp.Forward(x, true);
    Matrix dlogits;
    const float loss = SoftmaxCrossEntropy(out, labels, {}, &dlogits);
    if (epoch == 0) first_loss = loss;
    last_loss = loss;
    mlp.Backward(dlogits);
    opt.Step(params);
  }
  EXPECT_LT(last_loss, first_loss * 0.2f);
  Matrix out = mlp.Forward(x, false);
  EXPECT_GT(Accuracy(out, labels, {}), 0.95f);
}

TEST(MetricsTest, AccuracyAndMacroF1) {
  Matrix logits(4, 2);
  logits.At(0, 0) = 1.0f;  // pred 0
  logits.At(1, 1) = 1.0f;  // pred 1
  logits.At(2, 0) = 1.0f;  // pred 0
  logits.At(3, 1) = 1.0f;  // pred 1
  std::vector<int32_t> labels = {0, 1, 1, 1};
  EXPECT_FLOAT_EQ(Accuracy(logits, labels, {}), 0.75f);
  EXPECT_FLOAT_EQ(Accuracy(logits, labels, {0, 1}), 1.0f);
  // class 0: tp=1 fp=1 fn=0 -> f1 = 2/3; class 1: tp=2 fp=0 fn=1 -> 0.8.
  EXPECT_NEAR(MacroF1(logits, labels, {}, 2), (2.0f / 3.0f + 0.8f) / 2.0f,
              1e-5f);
}

TEST(MetricsTest, EmptyIndexSetEdgeCases) {
  Matrix logits(0, 2);
  EXPECT_FLOAT_EQ(Accuracy(logits, {}, {}), 0.0f);
  EXPECT_FLOAT_EQ(MacroF1(logits, {}, {}, 2), 0.0f);
}

}  // namespace
}  // namespace freehgc::nn
