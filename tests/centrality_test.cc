#include <gtest/gtest.h>

#include <algorithm>

#include "sparse/centrality.h"
#include "sparse/ops.h"

namespace freehgc::sparse {
namespace {

CsrMatrix Adj(int32_t n, std::vector<CooEntry> e) {
  auto r = CsrMatrix::FromCoo(n, n, std::move(e));
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

/// Undirected star: node 0 at the center of nodes 1..4.
CsrMatrix Star() {
  std::vector<CooEntry> e;
  for (int32_t i = 1; i <= 4; ++i) {
    e.push_back({0, i, 1.0f});
    e.push_back({i, 0, 1.0f});
  }
  return Adj(5, std::move(e));
}

/// Undirected path 0-1-2-3-4.
CsrMatrix Path() {
  std::vector<CooEntry> e;
  for (int32_t i = 0; i < 4; ++i) {
    e.push_back({i, i + 1, 1.0f});
    e.push_back({i + 1, i, 1.0f});
  }
  return Adj(5, std::move(e));
}

TEST(PprPushTest, MatchesPowerIterationOnSmallGraph) {
  const CsrMatrix a = sparse::RowNormalize(Path());
  std::vector<float> dense_teleport = {1.0f, 0, 0, 0, 0};
  const auto exact = PprScores(a, dense_teleport, 0.2f, 200, 1e-8f);
  const auto push = PprPush(a, {{0, 1.0f}}, 0.2f, /*epsilon=*/1e-7f);
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(push[i], exact[i], 5e-3f) << "node " << i;
  }
}

TEST(PprPushTest, LargerEpsilonIsSparserButOrdered) {
  const CsrMatrix a = sparse::RowNormalize(Star());
  const auto p = PprPush(a, {{0, 1.0f}}, 0.15f, 1e-3f);
  // Center keeps the most mass.
  for (size_t i = 1; i < p.size(); ++i) EXPECT_GT(p[0], p[i]);
  // Symmetric leaves get equal mass.
  EXPECT_NEAR(p[1], p[4], 1e-6f);
}

TEST(PprPushTest, EmptyTeleportYieldsZero) {
  const CsrMatrix a = sparse::RowNormalize(Star());
  const auto p = PprPush(a, {}, 0.15f);
  for (float x : p) EXPECT_EQ(x, 0.0f);
}

TEST(CentralityTest, DegreeOnStar) {
  const auto c = Centrality(Star(), CentralityKind::kDegree);
  EXPECT_DOUBLE_EQ(c[0], 4.0);
  EXPECT_DOUBLE_EQ(c[1], 1.0);
}

TEST(CentralityTest, ClosenessPrefersCenter) {
  CentralityOptions opts;
  opts.num_samples = 5;  // all sources: exact
  const auto c = Centrality(Star(), CentralityKind::kCloseness, opts);
  for (size_t i = 1; i < c.size(); ++i) EXPECT_GT(c[0], c[i]);
  // Path graph: middle node most central.
  const auto p = Centrality(Path(), CentralityKind::kCloseness, opts);
  EXPECT_GT(p[2], p[0]);
  EXPECT_GT(p[2], p[4]);
}

TEST(CentralityTest, BetweennessPeaksAtBridge) {
  CentralityOptions opts;
  opts.num_samples = 5;
  const auto b = Centrality(Path(), CentralityKind::kBetweenness, opts);
  // Middle of the path carries the most shortest paths; endpoints none.
  EXPECT_GT(b[2], b[1]);
  EXPECT_GT(b[2], b[3]);
  EXPECT_DOUBLE_EQ(b[0], 0.0);
  EXPECT_DOUBLE_EQ(b[4], 0.0);
}

TEST(CentralityTest, HitsHubAndAuthority) {
  // Directed bipartite-ish: 0 and 1 point to 2 and 3. Hubs: 0,1;
  // authorities: 2,3.
  CsrMatrix a = Adj(4, {{0, 2, 1.0f}, {0, 3, 1.0f}, {1, 2, 1.0f},
                        {1, 3, 1.0f}});
  const auto hubs = Centrality(a, CentralityKind::kHubs);
  const auto auth = Centrality(a, CentralityKind::kAuthorities);
  EXPECT_GT(hubs[0], hubs[2]);
  EXPECT_GT(hubs[1], hubs[3]);
  EXPECT_GT(auth[2], auth[0]);
  EXPECT_GT(auth[3], auth[1]);
}

TEST(CentralityTest, AllKindsNamed) {
  for (auto kind :
       {CentralityKind::kDegree, CentralityKind::kCloseness,
        CentralityKind::kBetweenness, CentralityKind::kHubs,
        CentralityKind::kAuthorities}) {
    EXPECT_STRNE(CentralityKindName(kind), "?");
  }
}

TEST(CentralityTest, DeterministicUnderSeed) {
  CentralityOptions opts;
  opts.num_samples = 3;
  opts.seed = 42;
  const CsrMatrix a = Star();
  EXPECT_EQ(Centrality(a, CentralityKind::kBetweenness, opts),
            Centrality(a, CentralityKind::kBetweenness, opts));
}

}  // namespace
}  // namespace freehgc::sparse
