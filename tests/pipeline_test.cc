#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "datasets/generator.h"
#include "eval/experiment.h"
#include "obs/metrics.h"
#include "pipeline/artifact_cache.h"
#include "pipeline/method.h"
#include "pipeline/sweep.h"

namespace freehgc::pipeline {
namespace {

// --- registry ---------------------------------------------------------------

TEST(MethodRegistryTest, BuiltinMethodsRegistered) {
  const std::vector<std::string> keys = MethodRegistry::Global().Keys();
  const std::set<std::string> expected = {
      "random", "herding", "kcenter", "coarsening",
      "gcond",  "hgcond",  "freehgc"};
  for (const auto& key : expected) {
    EXPECT_TRUE(std::count(keys.begin(), keys.end(), key)) << key;
    const CondensationMethod* m = MethodRegistry::Global().Find(key);
    ASSERT_NE(m, nullptr) << key;
    EXPECT_EQ(m->key(), key);
  }
  EXPECT_EQ(MethodRegistry::Global().Find("no-such-method"), nullptr);
}

TEST(MethodRegistryTest, EnumFacadeResolvesThroughRegistry) {
  using eval::MethodKind;
  const std::vector<std::pair<MethodKind, std::string>> expected = {
      {MethodKind::kRandom, "Random-HG"},
      {MethodKind::kHerding, "Herding-HG"},
      {MethodKind::kKCenter, "K-Center-HG"},
      {MethodKind::kCoarsening, "Coarsening-HG"},
      {MethodKind::kGCond, "GCond"},
      {MethodKind::kHGCond, "HGCond"},
      {MethodKind::kFreeHGC, "FreeHGC"},
  };
  for (const auto& [kind, name] : expected) {
    const CondensationMethod* m =
        MethodRegistry::Global().Find(eval::MethodKey(kind));
    ASSERT_NE(m, nullptr) << name;
    EXPECT_EQ(m->display_name(), name);
    EXPECT_STREQ(eval::MethodName(kind), name.c_str());
  }
}

TEST(MethodRegistryTest, UnknownKeyIsNotFound) {
  const HeteroGraph g = datasets::MakeToy(7);
  hgnn::PropagateOptions popts;
  popts.max_hops = 2;
  const hgnn::EvalContext ctx = hgnn::BuildEvalContext(g, popts);
  auto res = RunMethod(ctx, "no-such-method", RunSpec{}, hgnn::HgnnConfig{});
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kNotFound);
}

// --- artifact cache ---------------------------------------------------------

TEST(ArtifactCacheTest, ComposedMemoizesByGraphPathAndBudget) {
  const HeteroGraph g = datasets::MakeToy(7);
  MetaPathOptions mp;
  mp.max_hops = 2;
  const auto paths = EnumerateMetaPaths(g, g.target_type(), mp);
  ASSERT_GE(paths.size(), 2u);

  ArtifactCache cache;
  const auto a = cache.Composed(g, paths[0], 0, nullptr);
  const auto b = cache.Composed(g, paths[0], 0, nullptr);
  EXPECT_EQ(a.get(), b.get());  // same pinned entry, served from the memo
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(*a, ComposeAdjacency(g, paths[0], 0));

  // A different path or row budget is a different entry.
  cache.Composed(g, paths[1], 0, nullptr);
  cache.Composed(g, paths[0], 4, nullptr);
  EXPECT_EQ(cache.stats().misses, 3);
  EXPECT_GT(cache.stats().bytes, 0u);

  cache.Clear();
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(ArtifactCacheTest, SpGemmPlansSharedAcrossBudgets) {
  const HeteroGraph g = datasets::MakeToy(7);
  MetaPathOptions mp;
  mp.max_hops = 2;
  const auto paths = EnumerateMetaPaths(g, g.target_type(), mp);
  const MetaPath* two_hop = nullptr;
  for (const auto& p : paths) {
    if (p.hops() == 2) {
      two_hop = &p;
      break;
    }
  }
  ASSERT_NE(two_hop, nullptr);

  ArtifactCache cache;
  cache.Composed(g, *two_hop, 0, nullptr);
  EXPECT_EQ(cache.stats().plan_misses, 1);
  EXPECT_EQ(cache.stats().plan_hits, 0);

  // The same path at a different row budget is a distinct adjacency
  // entry (artifact miss) whose single SpGEMM reuses the symbolic plan:
  // plans are budget-independent, and plan tallies stay separate from
  // the artifact hit/miss stats.
  const auto budgeted = cache.Composed(g, *two_hop, 4, nullptr);
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().plan_misses, 1);
  EXPECT_EQ(cache.stats().plan_hits, 1);

  // Plan-served composition is bit-identical to the plan-free one.
  EXPECT_EQ(*budgeted, ComposeAdjacency(g, *two_hop, 4));

  cache.Clear();
  EXPECT_EQ(cache.stats().plan_hits, 0);
  EXPECT_EQ(cache.stats().plan_misses, 0);
}

TEST(ArtifactCacheTest, PropagatedAndBaselineMemoize) {
  const HeteroGraph g = datasets::MakeToy(7);
  hgnn::PropagateOptions popts;
  popts.max_hops = 2;
  const hgnn::EvalContext ctx = hgnn::BuildEvalContext(g, popts);

  ArtifactCache cache;
  const auto f1 = cache.Propagated(g, ctx.paths, popts.max_row_nnz, nullptr);
  const auto f2 = cache.Propagated(g, ctx.paths, popts.max_row_nnz, nullptr);
  EXPECT_EQ(f1.get(), f2.get());
  ASSERT_EQ(f1->blocks.size(), ctx.full_features.blocks.size());
  for (size_t i = 0; i < f1->blocks.size(); ++i) {
    EXPECT_EQ(f1->blocks[i], ctx.full_features.blocks[i]) << i;
  }

  hgnn::HgnnConfig cfg;
  cfg.epochs = 3;
  cfg.patience = 0;
  const auto before = cache.stats();
  const hgnn::EvalMetrics m1 = cache.WholeGraphBaseline(ctx, cfg, nullptr);
  const hgnn::EvalMetrics m2 = cache.WholeGraphBaseline(ctx, cfg, nullptr);
  EXPECT_EQ(m1.test_accuracy, m2.test_accuracy);
  EXPECT_EQ(m1.macro_f1, m2.macro_f1);
  EXPECT_EQ(cache.stats().hits, before.hits + 1);
  EXPECT_EQ(cache.stats().misses, before.misses + 1);
}

TEST(ArtifactCacheTest, FingerprintDistinguishesGraphContent) {
  ArtifactCache cache;
  const HeteroGraph a = datasets::MakeToy(7);
  const HeteroGraph b = datasets::MakeToy(7);
  const HeteroGraph c = datasets::MakeToy(8);
  EXPECT_EQ(cache.FingerprintOf(a), cache.FingerprintOf(b));
  EXPECT_NE(cache.FingerprintOf(a), cache.FingerprintOf(c));
  // Memoized: repeated lookups agree.
  EXPECT_EQ(cache.FingerprintOf(a), cache.FingerprintOf(a));
}

// --- determinism invariant --------------------------------------------------

SweepSpec SmallSpec() {
  SweepSpec spec;
  spec.datasets = {{.name = "toy", .ratios = {0.2}}};
  spec.methods = {"herding", "coarsening", "freehgc"};
  spec.seeds = {1, 2};
  spec.whole_graph_baseline = true;
  spec.eval_cfg.epochs = 10;
  return spec;
}

void ExpectBitIdentical(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (size_t i = 0; i < a.cells.size(); ++i) {
    const SweepCell& x = a.cells[i];
    const SweepCell& y = b.cells[i];
    EXPECT_EQ(x.dataset, y.dataset);
    EXPECT_EQ(x.ratio, y.ratio);
    EXPECT_EQ(x.method, y.method);
    EXPECT_EQ(x.model, y.model);
    EXPECT_EQ(x.agg.oom, y.agg.oom) << x.method;
    EXPECT_EQ(x.agg.accuracy.mean, y.agg.accuracy.mean) << x.method;
    EXPECT_EQ(x.agg.accuracy.std, y.agg.accuracy.std) << x.method;
    EXPECT_EQ(x.agg.storage_bytes, y.agg.storage_bytes) << x.method;
  }
  ASSERT_EQ(a.wholes.size(), b.wholes.size());
  for (size_t i = 0; i < a.wholes.size(); ++i) {
    EXPECT_EQ(a.wholes[i].metrics.test_accuracy,
              b.wholes[i].metrics.test_accuracy);
    EXPECT_EQ(a.wholes[i].metrics.macro_f1, b.wholes[i].metrics.macro_f1);
  }
}

TEST(SweepDeterminismTest, CacheOnOffAndThreadCountsBitIdentical) {
  // The hard invariant: cached and uncached sweeps produce bit-identical
  // cell values, at every thread count.
  std::vector<SweepResult> results;
  for (int threads : {1, 2, 4}) {
    for (bool use_cache : {false, true}) {
      exec::ExecContext ex(threads);
      PipelineEnv env;
      env.exec = &ex;
      SweepSpec spec = SmallSpec();
      spec.use_cache = use_cache;
      SweepRunner runner(std::move(spec), env);
      auto result = runner.Run();
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result->cache_stats.hits > 0 || result->cache_stats.misses > 0,
                use_cache);
      results.push_back(std::move(*result));
    }
  }
  for (size_t i = 1; i < results.size(); ++i) {
    ExpectBitIdentical(results[0], results[i]);
  }
  // The machine-readable record's deterministic sections agree too.
  const std::string cells0 =
      results[0].ToJson().substr(0, results[0].ToJson().find("\"timing\""));
  for (size_t i = 1; i < results.size(); ++i) {
    const std::string json = results[i].ToJson();
    EXPECT_EQ(cells0, json.substr(0, json.find("\"timing\"")));
  }
}

TEST(SweepDeterminismTest, WarmSweepDoesStrictlyFewerSpgemmCalls) {
  obs::Counter& spgemm =
      obs::MetricsRegistry::Global().GetCounter("spgemm.calls");
  SweepRunner runner(SmallSpec());

  const int64_t before_cold = spgemm.Value();
  auto cold = runner.Run();
  ASSERT_TRUE(cold.ok());
  const int64_t cold_calls = spgemm.Value() - before_cold;

  const int64_t before_warm = spgemm.Value();
  auto warm = runner.Run();  // same runner: the cache is warm
  ASSERT_TRUE(warm.ok());
  const int64_t warm_calls = spgemm.Value() - before_warm;

  EXPECT_GT(cold_calls, 0);
  EXPECT_LT(warm_calls, cold_calls);
  EXPECT_EQ(warm->cache_stats.misses, 0);
  EXPECT_GT(warm->cache_stats.hits, 0);
  ExpectBitIdentical(*cold, *warm);
}

TEST(CondenseCacheTest, CacheOnVsOffProducesIdenticalCondensedGraph) {
  const HeteroGraph g = datasets::MakeToy(7);
  core::FreeHgcOptions opts;
  opts.ratio = 0.3;
  opts.max_hops = 2;
  ArtifactCache cache;
  auto uncached = core::Condense(g, opts);
  auto cached1 = core::Condense(g, opts, nullptr, &cache);
  auto cached2 = core::Condense(g, opts, nullptr, &cache);  // warm
  ASSERT_TRUE(uncached.ok());
  ASSERT_TRUE(cached1.ok());
  ASSERT_TRUE(cached2.ok());
  EXPECT_GT(cache.stats().hits, 0);
  EXPECT_EQ(uncached->selected_target, cached1->selected_target);
  EXPECT_EQ(uncached->selected_target, cached2->selected_target);
  EXPECT_EQ(uncached->graph.ContentFingerprint(),
            cached1->graph.ContentFingerprint());
  EXPECT_EQ(uncached->graph.ContentFingerprint(),
            cached2->graph.ContentFingerprint());
}

}  // namespace
}  // namespace freehgc::pipeline
