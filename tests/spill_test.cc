// Tiered artifact storage: spill-file round trips, budgeted cache
// determinism, eviction-vs-pinned-read races, GraphStore residency, and
// orphan-spool GC. Test names carry "Spill"/"Mapped" so the sanitizer CI
// leg picks them up (they exercise the concurrent eviction paths).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "datasets/generator.h"
#include "graph/section_io.h"
#include "graph/serialize.h"
#include "hgnn/feature_spill.h"
#include "hgnn/propagate.h"
#include "metapath/metapath.h"
#include "pipeline/artifact_cache.h"
#include "serve/graph_store.h"
#include "serve/service.h"

namespace freehgc {
namespace {

/// Fresh scratch directory under /tmp (recreated per call).
std::string ScratchDir(const std::string& leaf) {
  const std::string dir = "/tmp/freehgc_spill_test_" + leaf;
  std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str());
  return dir;
}

void RemoveTree(const std::string& dir) {
  std::system(("rm -rf " + dir).c_str());
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

// ---------------------------------------------------------------------------
// Section-IO spill round trips

TEST(SpillCsrTest, MappedRoundTripIsBitIdentical) {
  const HeteroGraph g = datasets::MakeToy(5);
  exec::ExecContext ex(2);
  MetaPathOptions mp;
  mp.max_hops = 2;
  mp.max_paths = 4;
  const auto paths = EnumerateMetaPaths(g, g.target_type(), mp);
  ASSERT_FALSE(paths.empty());
  const std::shared_ptr<const CsrMatrix> m =
      ComposedAdjacency(nullptr, g, paths[0], 0, &ex);
  ASSERT_NE(m, nullptr);
  ASSERT_GT(m->nnz(), 0);

  const std::string dir = ScratchDir("csr");
  const std::string path = dir + "/adj.spill";
  auto written = section_io::WriteCsrSpill(*m, path, 0xabcdef0123456789ull);
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_GT(*written, 0u);

  // The header fingerprint is readable without payload IO (what the
  // orphan GC and the cache's restore matching rely on).
  auto fp = section_io::PeekFingerprint(path, section_io::SpillFormat());
  ASSERT_TRUE(fp.ok()) << fp.status().ToString();
  EXPECT_EQ(*fp, 0xabcdef0123456789ull);

  auto restored = section_io::MapCsrSpill(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(restored->is_mapped());
  EXPECT_EQ(restored->rows(), m->rows());
  EXPECT_EQ(restored->cols(), m->cols());
  ASSERT_EQ(restored->nnz(), m->nnz());
  EXPECT_TRUE(std::equal(m->indptr().begin(), m->indptr().end(),
                         restored->indptr().begin()));
  EXPECT_TRUE(std::equal(m->indices().begin(), m->indices().end(),
                         restored->indices().begin()));
  // Bit-identity, not approximate equality: spilled artifacts must not
  // perturb downstream fingerprints.
  ASSERT_EQ(restored->values().size(), m->values().size());
  EXPECT_EQ(std::memcmp(restored->values().data(), m->values().data(),
                        m->values().size() * sizeof(float)),
            0);

  // The mapping outlives the file name: views stay valid after unlink.
  const CsrMatrix held = *restored;
  std::remove(path.c_str());
  EXPECT_EQ(held.indptr()[held.rows()], m->indptr()[m->rows()]);
  RemoveTree(dir);
}

TEST(SpillPropagatedTest, MappedRoundTripIsBitIdentical) {
  const HeteroGraph g = datasets::MakeToy(7);
  exec::ExecContext ex(2);
  hgnn::PropagateOptions popts;
  popts.max_hops = 2;
  popts.max_paths = 4;
  const hgnn::PropagatedFeatures f = hgnn::PropagateFeatures(g, popts, &ex);
  ASSERT_GT(f.blocks.size(), 1u);

  const std::string dir = ScratchDir("prop");
  const std::string path = dir + "/prop.spill";
  auto written = hgnn::WritePropagatedSpill(f, path, 42);
  ASSERT_TRUE(written.ok()) << written.status().ToString();

  auto restored = hgnn::MapPropagatedSpill(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ((*restored)->blocks.size(), f.blocks.size());
  EXPECT_EQ((*restored)->names, f.names);
  EXPECT_EQ((*restored)->end_types, f.end_types);
  for (size_t b = 0; b < f.blocks.size(); ++b) {
    const Matrix& want = f.blocks[b];
    const Matrix& got = (*restored)->blocks[b];
    EXPECT_TRUE(got.is_mapped());
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    EXPECT_EQ(std::memcmp(got.data(), want.data(),
                          static_cast<size_t>(want.rows()) *
                              static_cast<size_t>(want.cols()) *
                              sizeof(float)),
              0)
        << "block " << b << " (" << f.names[b] << ") diverged";
  }
  RemoveTree(dir);
}

// ---------------------------------------------------------------------------
// Budgeted cache determinism: the served condensation result must not
// depend on the residency budget or the worker count.

TEST(SpillServeTest, MappedCondensationIgnoresBudgetAndThreads) {
  const HeteroGraph g = datasets::MakeToy(5);
  const std::string dir = ScratchDir("budget");
  const std::string graph_path = dir + "/g.fhgc";
  ASSERT_TRUE(SaveHeteroGraphV3(g, graph_path).ok());

  serve::CondenseRequest request;
  request.graph = "g";
  request.method = "herding";
  request.ratio = 0.3;
  request.max_paths = 4;
  request.return_graph = true;

  // One serve-path run: returns the serialized condensed graph and the
  // cache's resident peak.
  size_t unbudgeted_peak = 0;
  auto run = [&](size_t budget, int threads, bool spill,
                 const std::string& spill_dir) {
    serve::ServeOptions opts;
    opts.slots = 1;
    opts.queue_capacity = 8;
    opts.threads_per_slot = threads;
    if (spill) {
      opts.spill_dir = spill_dir;
      opts.artifact_budget_bytes = budget;
    }
    serve::ServeService service(opts);
    EXPECT_TRUE(service.store().RegisterMappedFile("g", graph_path).ok());
    auto reply = service.Condense(request);
    EXPECT_TRUE(reply.ok()) << reply.status().ToString();
    const auto stats = service.cache().stats();
    if (!spill) unbudgeted_peak = stats.peak_resident_bytes;
    if (spill && budget == 0) {
      EXPECT_GT(stats.spills, 0) << "budget 0 never spilled";
    }
    std::string bytes = reply.ok() ? reply->graph_bytes : std::string();
    service.Shutdown();
    return bytes;
  };

  const std::string want = run(0, 1, /*spill=*/false, "");
  ASSERT_FALSE(want.empty());
  ASSERT_GT(unbudgeted_peak, 0u);

  int variant = 0;
  for (const int threads : {1, 2, 4}) {
    for (const size_t budget :
         {size_t{0}, unbudgeted_peak / 2, size_t{SIZE_MAX}}) {
      const std::string sdir =
          ScratchDir("budget_v" + std::to_string(variant++));
      EXPECT_EQ(run(budget, threads, /*spill=*/true, sdir), want)
          << "budget=" << budget << " threads=" << threads
          << " diverged from the unbudgeted single-thread result";
      RemoveTree(sdir);
    }
  }
  RemoveTree(dir);
}

// ---------------------------------------------------------------------------
// Eviction racing pinned readers: readers hold pins and verify payloads
// while another thread applies eviction pressure. No sleeps — the
// interleaving comes from the loop density. Run under the sanitizer leg.

TEST(SpillCacheTest, MappedEvictionVsPinnedReadStress) {
  const HeteroGraph g = datasets::MakeToy(9);
  exec::ExecContext ex(2);
  MetaPathOptions mp;
  mp.max_hops = 2;
  mp.max_paths = 4;
  const auto paths = EnumerateMetaPaths(g, g.target_type(), mp);
  ASSERT_GE(paths.size(), 2u);

  // Reference payloads, computed uncached.
  std::vector<int64_t> want_nnz;
  std::vector<double> want_sum;
  for (const auto& p : paths) {
    const auto m = ComposedAdjacency(nullptr, g, p, 0, &ex);
    want_nnz.push_back(m->nnz());
    double s = 0.0;
    for (const float v : m->values()) s += v;
    want_sum.push_back(s);
  }

  const std::string dir = ScratchDir("stress");
  pipeline::ArtifactCache cache;
  // Budget 0: every unpinned entry is evicted as soon as possible, so
  // every lookup is a spill-or-restore and pins are what keep payloads
  // alive under the readers.
  ASSERT_TRUE(cache.ConfigureSpill({0, dir}).ok());

  constexpr int kIters = 60;
  std::atomic<int> failures{0};
  auto reader = [&](size_t offset) {
    exec::ExecContext rex(1);
    for (int i = 0; i < kIters; ++i) {
      const size_t pi = (offset + static_cast<size_t>(i)) % paths.size();
      const auto pin = cache.Composed(g, paths[pi], 0, &rex);
      if (pin == nullptr || pin->nnz() != want_nnz[pi]) {
        failures.fetch_add(1);
        continue;
      }
      double s = 0.0;
      for (const float v : pin->values()) s += v;
      if (s != want_sum[pi]) failures.fetch_add(1);
    }
  };
  auto trimmer = [&] {
    exec::ExecContext tex(1);
    for (int i = 0; i < kIters; ++i) {
      cache.Composed(g, paths[static_cast<size_t>(i) % paths.size()], 0,
                     &tex);
      cache.TrimToBudget();
    }
  };
  std::thread t1(reader, 0), t2(reader, 1), t3(trimmer);
  t1.join();
  t2.join();
  t3.join();
  EXPECT_EQ(failures.load(), 0);

  const auto stats = cache.stats();
  EXPECT_GT(stats.spills, 0) << "stress never exercised the spill tier";
  EXPECT_GT(stats.restores, 0) << "stress never exercised restores";
  cache.Clear();
  RemoveTree(dir);
}

// ---------------------------------------------------------------------------
// GraphStore residency budget

TEST(GraphStoreMappedTest, ResidentBudgetEvictsAndRemapsTransparently) {
  const std::string dir = ScratchDir("store");
  std::vector<HeteroGraph> graphs;
  std::vector<std::string> names;
  serve::GraphStore store;
  for (const uint64_t seed : {5u, 6u, 7u}) {
    graphs.push_back(datasets::MakeToy(seed));
    const std::string name = "g" + std::to_string(seed);
    const std::string path = dir + "/" + name + ".fhgc";
    ASSERT_TRUE(SaveHeteroGraphV3(graphs.back(), path).ok());
    auto info = store.RegisterMappedFile(name, path);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    names.push_back(name);
  }
  EXPECT_EQ(store.Evictions(), 0);
  EXPECT_GT(store.MappedResidentBytes(), 0u);

  // A 1-byte budget evicts every unpinned mapped graph.
  store.SetResidentBudget(1);
  EXPECT_EQ(store.Evictions(), 3);
  EXPECT_EQ(store.MappedResidentBytes(), 0u);
  for (const auto& info : store.List()) {
    EXPECT_FALSE(info.resident) << info.name;
  }

  // Get re-maps transparently; the graph is bit-identical by fingerprint.
  auto ref = store.Get(names[0]);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  EXPECT_EQ((*ref)->ContentFingerprint(), graphs[0].ContentFingerprint());

  // A held reference pins the entry: eviction pressure skips it.
  store.SetResidentBudget(1);
  auto again = store.Get(names[0]);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->get(), ref->get()) << "re-map raced a live entry";

  // Eviction with the spool file gone: Get reports the failure instead
  // of serving a stale or partial graph.
  store.SetResidentBudget(SIZE_MAX);
  const std::string victim_path = dir + "/" + names[1] + ".fhgc";
  std::remove(victim_path.c_str());
  store.SetResidentBudget(1);
  auto gone = store.Get(names[1]);
  EXPECT_FALSE(gone.ok());
  RemoveTree(dir);
}

// ---------------------------------------------------------------------------
// Orphan-spool GC

TEST(SpillSweepTest, MappedSpoolSweepRemovesOrphansKeepsValid) {
  const std::string dir = ScratchDir("sweep");
  const HeteroGraph g = datasets::MakeToy(11);
  const std::string valid =
      dir + "/" + StrFormat("%016llx", static_cast<unsigned long long>(
                                           g.ContentFingerprint())) +
      ".fhgc";
  ASSERT_TRUE(SaveHeteroGraphV3(g, valid).ok());
  // Valid container under a name that is not its fingerprint: orphaned
  // (the store only rehydrates fingerprint-named spools).
  const std::string misnamed = dir + "/00000000deadbeef.fhgc";
  ASSERT_TRUE(SaveHeteroGraphV3(g, misnamed).ok());
  const std::string spill = dir + "/a1b2.spill";
  const std::string tmp = dir + "/upload.fhgc.tmp";
  const std::string other = dir + "/README.txt";
  for (const auto& p : {spill, tmp, other}) {
    std::ofstream(p) << "leftover";
  }

  auto swept = serve::SweepSpoolDir(dir);
  ASSERT_TRUE(swept.ok()) << swept.status().ToString();
  EXPECT_EQ(*swept, 3);
  EXPECT_TRUE(FileExists(valid));
  EXPECT_FALSE(FileExists(misnamed));
  EXPECT_FALSE(FileExists(spill));
  EXPECT_FALSE(FileExists(tmp));
  EXPECT_TRUE(FileExists(other)) << "sweep must not touch foreign files";

  EXPECT_EQ(serve::SweepSpoolDir(dir + "/nope").status().code(),
            StatusCode::kNotFound);
  RemoveTree(dir);
}

}  // namespace
}  // namespace freehgc
