#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "viz/tsne.h"

namespace freehgc::viz {
namespace {

TEST(TsneTest, OutputShape) {
  Rng rng(1);
  Matrix x(30, 8);
  x.FillGaussian(rng, 1.0f);
  TsneOptions opts;
  opts.iterations = 50;
  Matrix y = Tsne(x, opts);
  EXPECT_EQ(y.rows(), 30);
  EXPECT_EQ(y.cols(), 2);
  for (int64_t i = 0; i < y.size(); ++i) {
    EXPECT_FALSE(std::isnan(y.data()[i]));
  }
}

TEST(TsneTest, EdgeCases) {
  EXPECT_EQ(Tsne(Matrix(0, 4), {}).rows(), 0);
  EXPECT_EQ(Tsne(Matrix(1, 4), {}).rows(), 1);
}

TEST(TsneTest, SeparatesWellSeparatedClusters) {
  // Two far-apart Gaussian blobs must stay separated in the embedding.
  Rng rng(2);
  const int n = 40;
  Matrix x(n, 4);
  for (int i = 0; i < n; ++i) {
    const float mu = i < n / 2 ? -20.0f : 20.0f;
    for (int d = 0; d < 4; ++d) x.At(i, d) = rng.NextGaussian(mu, 0.5f);
  }
  TsneOptions opts;
  opts.iterations = 200;
  Matrix y = Tsne(x, opts);
  // Mean intra-cluster distance << mean inter-cluster distance.
  double intra = 0.0, inter = 0.0;
  int ni = 0, nx = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double d = std::sqrt(
          static_cast<double>(dense::RowSquaredDistance(y, i, y, j)));
      if ((i < n / 2) == (j < n / 2)) {
        intra += d;
        ++ni;
      } else {
        inter += d;
        ++nx;
      }
    }
  }
  EXPECT_LT(intra / ni, inter / nx);
}

TEST(DispersionTest, WiderSpreadScoresHigher) {
  Matrix tight(10, 2), wide(10, 2);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    tight.At(i, 0) = rng.NextGaussian(0.0f, 0.1f);
    tight.At(i, 1) = rng.NextGaussian(0.0f, 0.1f);
    wide.At(i, 0) = static_cast<float>(i % 5) * 10.0f;
    wide.At(i, 1) = static_cast<float>(i / 5) * 10.0f;
  }
  const DispersionStats ts = ComputeDispersion(tight);
  const DispersionStats ws = ComputeDispersion(wide);
  EXPECT_GT(ws.mean_pairwise_distance, ts.mean_pairwise_distance);
  EXPECT_GT(ws.grid_coverage, 0.1);
  EXPECT_EQ(ws.count, 10);
}

TEST(DispersionTest, DegenerateInputs) {
  const DispersionStats s = ComputeDispersion(Matrix(1, 2));
  EXPECT_EQ(s.count, 1);
  EXPECT_EQ(s.mean_pairwise_distance, 0.0);
}

TEST(ScatterCsvTest, WritesFile) {
  Matrix y(2, 2);
  y.At(0, 0) = 1.5f;
  const std::string path = "/tmp/freehgc_tsne_test.csv";
  ASSERT_TRUE(WriteScatterCsv(y, {"a", "b"}, path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64];
  ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
  EXPECT_STREQ(buf, "x,y,label\n");
  std::fclose(f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace freehgc::viz
