#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "sparse/csr.h"
#include "sparse/ops.h"

namespace freehgc {
namespace {

CsrMatrix FromCooOrDie(int32_t rows, int32_t cols,
                       std::vector<CooEntry> entries) {
  auto r = CsrMatrix::FromCoo(rows, cols, std::move(entries));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

/// Random sparse matrix with ~density fraction of entries set.
CsrMatrix RandomSparse(int32_t rows, int32_t cols, double density,
                       uint64_t seed) {
  Rng rng(seed);
  std::vector<CooEntry> entries;
  for (int32_t r = 0; r < rows; ++r) {
    for (int32_t c = 0; c < cols; ++c) {
      if (rng.NextDouble() < density) {
        entries.push_back({r, c, rng.NextUniform(0.1f, 2.0f)});
      }
    }
  }
  return FromCooOrDie(rows, cols, std::move(entries));
}

Matrix ToDense(const CsrMatrix& a) {
  Matrix m(a.rows(), a.cols());
  for (int32_t r = 0; r < a.rows(); ++r) {
    auto idx = a.RowIndices(r);
    auto val = a.RowValues(r);
    for (size_t k = 0; k < idx.size(); ++k) m.At(r, idx[k]) = val[k];
  }
  return m;
}

TEST(CsrTest, FromCooSortsAndSumsDuplicates) {
  CsrMatrix m = FromCooOrDie(2, 3, {{1, 2, 1.0f},
                                    {0, 1, 2.0f},
                                    {1, 2, 3.0f},
                                    {0, 0, 1.0f}});
  EXPECT_EQ(m.nnz(), 3);
  auto idx0 = m.RowIndices(0);
  ASSERT_EQ(idx0.size(), 2u);
  EXPECT_EQ(idx0[0], 0);
  EXPECT_EQ(idx0[1], 1);
  EXPECT_FLOAT_EQ(m.RowValues(1)[0], 4.0f);  // 1 + 3 summed
}

TEST(CsrTest, FromCooRejectsOutOfRange) {
  EXPECT_FALSE(CsrMatrix::FromCoo(2, 2, {{2, 0, 1.0f}}).ok());
  EXPECT_FALSE(CsrMatrix::FromCoo(2, 2, {{0, -1, 1.0f}}).ok());
  EXPECT_FALSE(CsrMatrix::FromCoo(-1, 2, {}).ok());
}

TEST(CsrTest, FromPartsValidates) {
  EXPECT_TRUE(CsrMatrix::FromParts(2, 2, {0, 1, 2}, {0, 1}, {1, 1}).ok());
  // wrong indptr size
  EXPECT_FALSE(CsrMatrix::FromParts(2, 2, {0, 2}, {0, 1}, {1, 1}).ok());
  // decreasing indptr
  EXPECT_FALSE(CsrMatrix::FromParts(2, 2, {0, 2, 1}, {0, 1}, {1, 1}).ok());
  // column out of range
  EXPECT_FALSE(CsrMatrix::FromParts(2, 2, {0, 1, 2}, {0, 5}, {1, 1}).ok());
  // indices/values mismatch
  EXPECT_FALSE(CsrMatrix::FromParts(2, 2, {0, 1, 2}, {0, 1}, {1}).ok());
}

TEST(CsrTest, ValidateAcceptsWellFormedMatrices) {
  EXPECT_TRUE(CsrMatrix().Validate().ok());
  EXPECT_TRUE(CsrMatrix(3, 5).Validate().ok());
  EXPECT_TRUE(RandomSparse(20, 30, 0.2, 41).Validate().ok());
}

TEST(CsrTest, ValidateRejectsCorruptedStructure) {
  // FromParts checks only the cheap structural subset, so these
  // corruptions slip past construction; Validate must reject them.
  // Unsorted columns within a row:
  auto unsorted = CsrMatrix::FromParts(1, 3, {0, 2}, {2, 0}, {1.0f, 1.0f});
  ASSERT_TRUE(unsorted.ok());
  EXPECT_FALSE(unsorted->Validate().ok());
  // Duplicate column within a row:
  auto dup = CsrMatrix::FromParts(1, 3, {0, 2}, {1, 1}, {1.0f, 1.0f});
  ASSERT_TRUE(dup.ok());
  EXPECT_FALSE(dup->Validate().ok());
}

TEST(CsrTest, ValidateRejectsNonFiniteValues) {
  CsrMatrix m = FromCooOrDie(2, 2, {{0, 0, 1.0f}, {1, 1, 2.0f}});
  ASSERT_TRUE(m.Validate().ok());
  m.mutable_values()[0] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(m.Validate().ok());
  m.mutable_values()[0] = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(m.Validate().ok());
  m.mutable_values()[0] = 1.0f;
  EXPECT_TRUE(m.Validate().ok());
}

TEST(CsrTest, ContentFingerprintSeparatesStructureAndValues) {
  const CsrMatrix a = FromCooOrDie(2, 2, {{0, 0, 1.0f}, {1, 1, 2.0f}});
  CsrMatrix same = a;
  EXPECT_EQ(a.ContentFingerprint(), same.ContentFingerprint());
  // A value change alone must change the fingerprint (plans are keyed
  // conservatively by full content, not just the sparsity pattern).
  same.mutable_values()[0] = 3.0f;
  EXPECT_NE(a.ContentFingerprint(), same.ContentFingerprint());
  const CsrMatrix other = FromCooOrDie(2, 2, {{0, 1, 1.0f}, {1, 1, 2.0f}});
  EXPECT_NE(a.ContentFingerprint(), other.ContentFingerprint());
}

TEST(CsrTest, BasicAccessors) {
  CsrMatrix m = FromCooOrDie(3, 4, {{0, 1, 2.0f}, {0, 3, 3.0f}, {2, 0, 1.0f}});
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.RowNnz(0), 2);
  EXPECT_EQ(m.RowNnz(1), 0);
  EXPECT_FLOAT_EQ(m.RowSum(0), 5.0f);
  EXPECT_TRUE(m.Contains(0, 3));
  EXPECT_FALSE(m.Contains(1, 0));
  EXPECT_FALSE(m.Contains(-1, 0));
  EXPECT_EQ(m.RowDegrees(), (std::vector<int64_t>{2, 0, 1}));
  EXPECT_GT(m.MemoryBytes(), 0u);
}

TEST(SparseOpsTest, TransposeRoundTrip) {
  CsrMatrix a = RandomSparse(7, 5, 0.3, 1);
  CsrMatrix att = sparse::Transpose(sparse::Transpose(a));
  EXPECT_EQ(a, att);
  CsrMatrix at = sparse::Transpose(a);
  EXPECT_EQ(at.rows(), 5);
  EXPECT_EQ(at.cols(), 7);
  for (int32_t r = 0; r < a.rows(); ++r) {
    auto idx = a.RowIndices(r);
    for (int32_t c : idx) EXPECT_TRUE(at.Contains(c, r));
  }
}

TEST(SparseOpsTest, RowNormalizeSumsToOne) {
  CsrMatrix a = RandomSparse(10, 10, 0.4, 2);
  CsrMatrix n = sparse::RowNormalize(a);
  for (int32_t r = 0; r < n.rows(); ++r) {
    if (a.RowNnz(r) > 0) EXPECT_NEAR(n.RowSum(r), 1.0f, 1e-5f);
  }
}

TEST(SparseOpsTest, SymNormalizeMatchesDenseFormula) {
  CsrMatrix a =
      FromCooOrDie(3, 3, {{0, 1, 1.0f}, {1, 0, 1.0f}, {1, 2, 1.0f},
                          {2, 1, 1.0f}});
  CsrMatrix n = sparse::SymNormalize(a);
  // degrees: 1, 2, 1 -> entry (0,1) = 1/sqrt(1*2)
  const float expect = 1.0f / std::sqrt(2.0f);
  EXPECT_NEAR(n.RowValues(0)[0], expect, 1e-6f);
  EXPECT_NEAR(n.RowValues(2)[0], expect, 1e-6f);
}

TEST(SparseOpsTest, SpGemmMatchesDenseReference) {
  CsrMatrix a = RandomSparse(8, 6, 0.35, 3);
  CsrMatrix b = RandomSparse(6, 9, 0.35, 4);
  Matrix ref = dense::MatMul(ToDense(a), ToDense(b));
  Matrix got = ToDense(sparse::SpGemm(a, b));
  ASSERT_EQ(got.rows(), ref.rows());
  ASSERT_EQ(got.cols(), ref.cols());
  for (int64_t i = 0; i < ref.rows(); ++i) {
    for (int64_t j = 0; j < ref.cols(); ++j) {
      EXPECT_NEAR(got.At(i, j), ref.At(i, j), 1e-4f);
    }
  }
}

TEST(SparseOpsTest, SpGemmRowBudgetKeepsLargest) {
  CsrMatrix a = FromCooOrDie(1, 3, {{0, 0, 1.0f}, {0, 1, 1.0f}, {0, 2, 1.0f}});
  CsrMatrix b = FromCooOrDie(
      3, 3, {{0, 0, 5.0f}, {1, 1, 1.0f}, {2, 2, 3.0f}});
  CsrMatrix c = sparse::SpGemm(a, b, /*max_row_nnz=*/2);
  EXPECT_EQ(c.RowNnz(0), 2);
  EXPECT_TRUE(c.Contains(0, 0));  // value 5 kept
  EXPECT_TRUE(c.Contains(0, 2));  // value 3 kept
  EXPECT_FALSE(c.Contains(0, 1));  // value 1 dropped
}

TEST(SparseOpsTest, SpMmDenseMatchesDense) {
  CsrMatrix a = RandomSparse(5, 7, 0.4, 5);
  Rng rng(6);
  Matrix x(7, 3);
  x.FillGaussian(rng, 1.0f);
  Matrix ref = dense::MatMul(ToDense(a), x);
  Matrix got = sparse::SpMmDense(a, x);
  for (int64_t i = 0; i < ref.rows(); ++i) {
    for (int64_t j = 0; j < ref.cols(); ++j) {
      EXPECT_NEAR(got.At(i, j), ref.At(i, j), 1e-4f);
    }
  }
}

TEST(SparseOpsTest, SpMmDenseTMatchesTranspose) {
  CsrMatrix a = RandomSparse(5, 7, 0.4, 7);
  Rng rng(8);
  Matrix x(5, 2);
  x.FillGaussian(rng, 1.0f);
  Matrix ref = sparse::SpMmDense(sparse::Transpose(a), x);
  Matrix got = sparse::SpMmDenseT(a, x);
  for (int64_t i = 0; i < ref.rows(); ++i) {
    for (int64_t j = 0; j < ref.cols(); ++j) {
      EXPECT_NEAR(got.At(i, j), ref.At(i, j), 1e-4f);
    }
  }
}

TEST(SparseOpsTest, SpMvAndSpMvT) {
  CsrMatrix a = FromCooOrDie(2, 3, {{0, 0, 1.0f}, {0, 2, 2.0f}, {1, 1, 3.0f}});
  const auto y = sparse::SpMv(a, {1.0f, 1.0f, 1.0f});
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[1], 3.0f);
  const auto yt = sparse::SpMvT(a, {1.0f, 2.0f});
  EXPECT_FLOAT_EQ(yt[0], 1.0f);
  EXPECT_FLOAT_EQ(yt[1], 6.0f);
  EXPECT_FLOAT_EQ(yt[2], 2.0f);
}

TEST(SparseOpsTest, SubmatrixRemapsIndices) {
  CsrMatrix a = FromCooOrDie(
      4, 4, {{0, 0, 1.0f}, {1, 2, 2.0f}, {2, 3, 3.0f}, {3, 1, 4.0f}});
  CsrMatrix sub = sparse::Submatrix(a, {1, 2}, {2, 3});
  EXPECT_EQ(sub.rows(), 2);
  EXPECT_EQ(sub.cols(), 2);
  EXPECT_FLOAT_EQ(sub.RowValues(0)[0], 2.0f);  // (1,2) -> (0,0)
  EXPECT_TRUE(sub.Contains(0, 0));
  EXPECT_TRUE(sub.Contains(1, 1));  // (2,3) -> (1,1)
  EXPECT_EQ(sub.nnz(), 2);
}

TEST(SparseOpsTest, AddElementwise) {
  CsrMatrix a = FromCooOrDie(2, 2, {{0, 0, 1.0f}, {1, 1, 2.0f}});
  CsrMatrix b = FromCooOrDie(2, 2, {{0, 0, 3.0f}, {0, 1, 4.0f}});
  CsrMatrix c = sparse::AddElementwise(a, b);
  EXPECT_EQ(c.nnz(), 3);
  EXPECT_FLOAT_EQ(c.RowValues(0)[0], 4.0f);
  EXPECT_FLOAT_EQ(c.RowValues(0)[1], 4.0f);
  EXPECT_FLOAT_EQ(c.RowValues(1)[0], 2.0f);
}

TEST(SparseOpsTest, SymmetrizeIsSymmetric) {
  CsrMatrix a = RandomSparse(6, 6, 0.3, 9);
  CsrMatrix s = sparse::Symmetrize(a);
  for (int32_t r = 0; r < s.rows(); ++r) {
    for (int32_t c : s.RowIndices(r)) {
      EXPECT_TRUE(s.Contains(c, r));
    }
  }
}

TEST(PprTest, ConservesProbabilityMass) {
  // Symmetric normalized chain graph is substochastic; use a row-stochastic
  // matrix to check mass conservation.
  CsrMatrix a = FromCooOrDie(
      3, 3,
      {{0, 1, 1.0f}, {1, 0, 0.5f}, {1, 2, 0.5f}, {2, 1, 1.0f}});
  std::vector<float> teleport = {1.0f, 0.0f, 0.0f};
  const auto pi = sparse::PprScores(a, teleport, 0.15f, 100, 1e-9f);
  float sum = 0.0f;
  for (float x : pi) sum += x;
  EXPECT_NEAR(sum, 1.0f, 1e-3f);
  for (float x : pi) EXPECT_GE(x, 0.0f);
}

TEST(PprTest, TeleportNodeGetsHighestScore) {
  // Star graph: teleporting at the center keeps the center dominant.
  CsrMatrix a = FromCooOrDie(4, 4, {{0, 1, 1.0f}, {1, 0, 1.0f},
                                    {0, 2, 1.0f}, {2, 0, 1.0f},
                                    {0, 3, 1.0f}, {3, 0, 1.0f}});
  CsrMatrix n = sparse::RowNormalize(a);
  std::vector<float> teleport = {1.0f, 0.0f, 0.0f, 0.0f};
  const auto pi = sparse::PprScores(n, teleport, 0.2f, 100);
  EXPECT_GT(pi[0], pi[1]);
  EXPECT_GT(pi[0], pi[2]);
  EXPECT_NEAR(pi[1], pi[2], 1e-4f);  // symmetric leaves
}

TEST(PprTest, HigherAlphaStaysCloserToTeleport) {
  CsrMatrix a = FromCooOrDie(3, 3, {{0, 1, 1.0f}, {1, 2, 1.0f},
                                    {2, 0, 1.0f}});
  CsrMatrix n = sparse::RowNormalize(a);
  std::vector<float> teleport = {1.0f, 0.0f, 0.0f};
  const auto lo = sparse::PprScores(n, teleport, 0.1f, 200);
  const auto hi = sparse::PprScores(n, teleport, 0.9f, 200);
  EXPECT_GT(hi[0], lo[0]);
}

}  // namespace
}  // namespace freehgc
