// Live-telemetry tests: Prometheus exposition (format, parser,
// snapshot-under-concurrency consistency), the flight recorder's ring +
// outlier semantics, the structured access log (golden line format and
// integrity under concurrent slot threads), the RateWindow estimator,
// and request-id span attribution.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/access_log.h"
#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/rate_window.h"
#include "obs/trace.h"
#include "serve/scheduler.h"

namespace freehgc {
namespace {

using obs::AccessLog;
using obs::AccessRecord;
using obs::FlightRecord;
using obs::FlightRecorder;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::PromSample;
using obs::RequestOutcome;

TEST(PrometheusName, MapsDotsAndPrefixes) {
  EXPECT_EQ(obs::PrometheusName("serve.latency.exec_ns"),
            "freehgc_serve_latency_exec_ns");
  EXPECT_EQ(obs::PrometheusName("spgemm.flops"), "freehgc_spgemm_flops");
  EXPECT_EQ(obs::PrometheusName("weird-name!x"), "freehgc_weird_name_x");
}

TEST(PrometheusText, GoldenExposition) {
  MetricsRegistry reg;
  reg.GetCounter("serve.requests.completed").Add(3);
  reg.GetGauge("serve.queue_depth").Set(7);
  Histogram& h = reg.GetHistogram("serve.latency.exec_ns");
  h.Observe(1);  // bucket le="1"
  h.Observe(3);  // bucket le="4"

  const std::string expected =
      "# TYPE freehgc_serve_requests_completed_total counter\n"
      "freehgc_serve_requests_completed_total 3\n"
      "# TYPE freehgc_serve_queue_depth gauge\n"
      "freehgc_serve_queue_depth 7\n"
      "# TYPE freehgc_serve_latency_exec_ns histogram\n"
      "freehgc_serve_latency_exec_ns_bucket{le=\"1\"} 1\n"
      "freehgc_serve_latency_exec_ns_bucket{le=\"4\"} 2\n"
      "freehgc_serve_latency_exec_ns_bucket{le=\"+Inf\"} 2\n"
      "freehgc_serve_latency_exec_ns_sum 4\n"
      "freehgc_serve_latency_exec_ns_count 2\n";
  EXPECT_EQ(obs::PrometheusText(reg), expected);
}

TEST(PrometheusText, ParseRoundTrip) {
  MetricsRegistry reg;
  reg.GetCounter("a.count").Add(42);
  reg.GetGauge("b.gauge").Set(-5);
  Histogram& h = reg.GetHistogram("c.lat");
  for (int64_t v : {1, 2, 100, 5000, 5000, 1 << 20}) h.Observe(v);

  const auto samples = obs::ParsePrometheusText(obs::PrometheusText(reg));
  double v = 0.0;
  ASSERT_TRUE(obs::FindPromValue(samples, "freehgc_a_count_total", &v));
  EXPECT_EQ(v, 42.0);
  ASSERT_TRUE(obs::FindPromValue(samples, "freehgc_b_gauge", &v));
  EXPECT_EQ(v, -5.0);
  ASSERT_TRUE(obs::FindPromValue(samples, "freehgc_c_lat_count", &v));
  EXPECT_EQ(v, 6.0);
  ASSERT_TRUE(obs::FindPromValue(samples, "freehgc_c_lat_sum", &v));
  EXPECT_EQ(v, 1.0 + 2 + 100 + 5000 + 5000 + (1 << 20));

  const auto buckets = obs::PromBuckets(samples, "freehgc_c_lat");
  ASSERT_GE(buckets.size(), 2u);
  // Cumulative and sorted; +Inf last and equal to _count.
  for (size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_LT(buckets[i - 1].first, buckets[i].first);
    EXPECT_LE(buckets[i - 1].second, buckets[i].second);
  }
  EXPECT_TRUE(std::isinf(buckets.back().first));
  EXPECT_EQ(buckets.back().second, 6.0);
}

TEST(PrometheusText, QuantilesMatchServerSideEstimate) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("lat");
  for (int i = 0; i < 1000; ++i) h.Observe(100 + i * 37 % 100000);
  const auto samples = obs::ParsePrometheusText(obs::PrometheusText(reg));
  const auto buckets = obs::PromBuckets(samples, "freehgc_lat");
  for (double q : {0.5, 0.95, 0.99}) {
    const double scraped = obs::QuantileFromCumulativeBuckets(buckets, q);
    const double server = static_cast<double>(h.ApproxQuantile(q));
    // Same buckets, same interpolation — the reconstruction must agree
    // to well under one bucket width.
    EXPECT_NEAR(scraped, server, server * 0.01 + 2.0) << "q=" << q;
  }
}

TEST(PrometheusText, ConcurrentObserveYieldsMonotoneSnapshots) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("hot");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&h, &stop, t] {
      uint64_t state = 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(t + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        h.Observe(static_cast<int64_t>(state >> 40));
      }
    });
  }
  double last_count = 0.0;
  for (int iter = 0; iter < 50; ++iter) {
    const auto samples = obs::ParsePrometheusText(obs::PrometheusText(reg));
    const auto buckets = obs::PromBuckets(samples, "freehgc_hot");
    ASSERT_FALSE(buckets.empty());
    // Within one snapshot: cumulative counts never decrease and +Inf
    // equals _count (both derived from the same per-bucket loads).
    for (size_t i = 1; i < buckets.size(); ++i) {
      ASSERT_LE(buckets[i - 1].second, buckets[i].second) << "iter " << iter;
    }
    double count = 0.0;
    ASSERT_TRUE(obs::FindPromValue(samples, "freehgc_hot_count", &count));
    ASSERT_EQ(buckets.back().second, count) << "iter " << iter;
    // Across snapshots: the total only grows.
    ASSERT_GE(count, last_count);
    last_count = count;
  }
  stop.store(true);
  for (auto& w : writers) w.join();
}

FlightRecord MakeRecord(uint64_t id, int64_t queue_ns, int64_t exec_ns,
                        RequestOutcome outcome = RequestOutcome::kOk) {
  FlightRecord rec;
  rec.id = id;
  rec.fingerprint = 0xabcdef;
  rec.submit_ns = static_cast<int64_t>(id) * 1000;
  rec.queue_ns = queue_ns;
  rec.exec_ns = exec_ns;
  rec.slot = static_cast<int32_t>(id % 4);
  rec.outcome = outcome;
  rec.set_graph("acm");
  rec.set_method("freehgc");
  return rec;
}

TEST(FlightRecorderTest, RingWrapsKeepingMostRecent) {
  FlightRecorder fr(/*capacity=*/8, /*outlier_capacity=*/4);
  for (uint64_t id = 1; id <= 20; ++id) {
    fr.Record(MakeRecord(id, 10, 10));
  }
  EXPECT_EQ(fr.TotalRecorded(), 20);
  const auto recent = fr.Recent();
  ASSERT_EQ(recent.size(), 8u);
  std::set<uint64_t> ids;
  for (const auto& r : recent) ids.insert(r.id);
  // Exactly ids 13..20 survive the wrap.
  for (uint64_t id = 13; id <= 20; ++id) EXPECT_TRUE(ids.count(id)) << id;
}

TEST(FlightRecorderTest, OutliersSurviveWraparound) {
  FlightRecorder fr(/*capacity=*/4, /*outlier_capacity=*/2);
  // One very slow request early, then enough fast traffic to evict it
  // from the ring many times over.
  fr.Record(MakeRecord(1, 500'000'000, 1'500'000'000));
  fr.Record(MakeRecord(2, 0, 900'000'000));
  for (uint64_t id = 3; id <= 40; ++id) fr.Record(MakeRecord(id, 1, 1));
  // And one error, also long gone from the ring.
  fr.Record(MakeRecord(41, 1, 1, RequestOutcome::kError));
  for (uint64_t id = 42; id <= 60; ++id) fr.Record(MakeRecord(id, 1, 1));

  const auto slowest = fr.Slowest();
  ASSERT_EQ(slowest.size(), 2u);
  EXPECT_EQ(slowest[0].id, 1u);  // sorted slowest-first
  EXPECT_EQ(slowest[1].id, 2u);
  const auto errors = fr.Errors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].id, 41u);
  EXPECT_EQ(errors[0].outcome, RequestOutcome::kError);

  const std::string dump = fr.DumpJson();
  EXPECT_NE(dump.find("\"recent\": ["), std::string::npos);
  EXPECT_NE(dump.find("\"slowest\": ["), std::string::npos);
  EXPECT_NE(dump.find("\"errors\": ["), std::string::npos);
  EXPECT_NE(dump.find("\"outcome\": \"error\""), std::string::npos);
}

TEST(FlightRecorderTest, NameFieldsTruncateSafely) {
  FlightRecord rec = MakeRecord(1, 1, 1);
  rec.set_graph("a-very-long-graph-name-that-exceeds-the-inline-buffer");
  rec.set_method("an-oversized-method-name");
  // Truncated, NUL-terminated, no overflow (ASAN would catch one).
  EXPECT_EQ(std::string(rec.graph).size(), sizeof(rec.graph) - 1);
  EXPECT_EQ(std::string(rec.method).size(), sizeof(rec.method) - 1);
}

TEST(AccessLogTest, GoldenLineFormat) {
  AccessRecord rec;
  rec.id = 7;
  rec.slot = 2;
  rec.graph = "acm";
  rec.method = "freehgc";
  rec.fingerprint = 0x1234;
  rec.priority = 1;
  rec.queue_ns = 1000;
  rec.exec_ns = 2000;
  rec.total_ns = 3000;
  rec.outcome = RequestOutcome::kOk;
  rec.evalctx_hit = true;
  rec.cache_hits = 5;
  rec.cache_misses = 1;
  rec.plan_hits = 4;
  rec.plan_misses = 2;
  EXPECT_EQ(
      AccessLog::FormatLine(rec),
      "{\"id\": 7, \"slot\": 2, \"graph\": \"acm\", \"method\": "
      "\"freehgc\", \"fingerprint\": \"0000000000001234\", \"priority\": 1, "
      "\"queue_ns\": 1000, \"exec_ns\": 2000, \"total_ns\": 3000, "
      "\"outcome\": \"ok\", \"reason\": \"\", \"evalctx_hit\": true, "
      "\"cache\": {\"hits\": 5, \"misses\": 1, \"plan_hits\": 4, "
      "\"plan_misses\": 2}}");
}

TEST(AccessLogTest, EscapesReasonStrings) {
  AccessRecord rec;
  rec.outcome = RequestOutcome::kError;
  rec.reason = "quote \" backslash \\ newline \n done";
  const std::string line = AccessLog::FormatLine(rec);
  EXPECT_NE(line.find("quote \\\" backslash \\\\ newline \\u000a done"),
            std::string::npos);
}

TEST(AccessLogTest, JsonlWellFormedUnderFourSlotLoad) {
  const std::string path = testing::TempDir() + "/telemetry_access.jsonl";
  std::remove(path.c_str());

  constexpr int kRequests = 64;
  {
    AccessLog log;
    ASSERT_TRUE(log.Open(path).ok());
    serve::RequestScheduler sched(
        /*slots=*/4, /*queue_capacity=*/kRequests, /*threads_per_slot=*/1,
        [](const serve::CondenseRequest& req,
           const serve::RequestContext& rctx) -> Result<serve::CondenseReply> {
          if (req.seed % 7 == 0) return Status::Internal("synthetic failure");
          serve::CondenseReply reply;
          reply.request_id = rctx.id;
          return reply;
        });
    sched.set_telemetry(&log, [](AccessRecord& rec) {
      rec.cache_hits = 0;
      rec.cache_misses = 0;
    });
    std::vector<serve::TicketPtr> tickets;
    for (int i = 0; i < kRequests; ++i) {
      serve::CondenseRequest req;
      req.graph = "g";
      req.seed = static_cast<uint64_t>(i);
      req.priority = i % 3;
      auto t = sched.Submit(std::move(req));
      ASSERT_TRUE(t.ok()) << t.status().ToString();
      tickets.push_back(*t);
    }
    for (auto& t : tickets) t->Wait();
    sched.Shutdown();
    EXPECT_EQ(log.lines_written(), kRequests);
  }

  // Every line is intact JSON-ish (no interleaved bytes), and every
  // request id appears exactly once.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::set<uint64_t> ids;
  int lines = 0, errors = 0;
  while (std::getline(in, line)) {
    ++lines;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    unsigned long long id = 0;
    ASSERT_EQ(std::sscanf(line.c_str(), "{\"id\": %llu,", &id), 1) << line;
    EXPECT_TRUE(ids.insert(id).second) << "duplicate id " << id;
    EXPECT_NE(line.find("\"outcome\": \""), std::string::npos);
    if (line.find("\"outcome\": \"error\"") != std::string::npos) {
      ++errors;
      EXPECT_NE(line.find("synthetic failure"), std::string::npos);
    }
  }
  EXPECT_EQ(lines, kRequests);
  EXPECT_EQ(static_cast<size_t>(lines), ids.size());
  EXPECT_GT(errors, 0);  // the seed%7 failures must be logged as errors
  std::remove(path.c_str());
}

TEST(RateWindowTest, ComputesWindowedRate) {
  obs::RateWindow w(/*window_ns=*/1'000'000'000);
  EXPECT_EQ(w.RatePerSec(), 0.0);
  w.Add(0, 0.0);
  EXPECT_EQ(w.RatePerSec(), 0.0);  // one sample: no interval yet
  w.Add(500'000'000, 50.0);
  EXPECT_NEAR(w.RatePerSec(), 100.0, 1e-9);
  // Old samples age out of the window.
  w.Add(2'000'000'000, 80.0);
  w.Add(3'000'000'000, 90.0);
  EXPECT_NEAR(w.RatePerSec(), 10.0, 1e-9);
  // Counter reset (server restart) reports 0, not a negative rate.
  w.Add(3'500'000'000, 2.0);
  EXPECT_EQ(w.RatePerSec(), 0.0);
}

TEST(ScopedRequestIdTest, SpansCarryTheRequestId) {
  obs::ClearTrace();
  obs::SetTracingEnabled(true);
  {
    obs::ScopedRequestId req(42);
    EXPECT_EQ(obs::CurrentRequestId(), 42u);
    FREEHGC_TRACE_SPAN("telemetry.tagged");
    {
      obs::ScopedRequestId nested(43);
      EXPECT_EQ(obs::CurrentRequestId(), 43u);
      FREEHGC_TRACE_SPAN("telemetry.nested");
    }
    EXPECT_EQ(obs::CurrentRequestId(), 42u);  // restored
  }
  EXPECT_EQ(obs::CurrentRequestId(), 0u);
  { FREEHGC_TRACE_SPAN("telemetry.untagged"); }
  obs::SetTracingEnabled(false);

  uint64_t tagged = 0, nested = 0, untagged = 99;
  for (const obs::SpanRecord& s : obs::SnapshotSpans()) {
    const std::string name = s.name;
    if (name == "telemetry.tagged") tagged = s.request;
    if (name == "telemetry.nested") nested = s.request;
    if (name == "telemetry.untagged") untagged = s.request;
  }
  EXPECT_EQ(tagged, 42u);
  EXPECT_EQ(nested, 43u);
  EXPECT_EQ(untagged, 0u);
}

}  // namespace
}  // namespace freehgc
