#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "cluster/meta_client.h"
#include "cluster/meta_server.h"
#include "cluster/meta_service.h"
#include "cluster/router.h"
#include "cluster/shard_agent.h"
#include "cluster/types.h"
#include "cluster/wire.h"
#include "datasets/generator.h"
#include "graph/serialize.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace freehgc::cluster {
namespace {

// ---------------------------------------------------------------------------
// Wire codecs: every pair is an exact inverse, and every decoder rejects
// truncation at every offset instead of reading past the end.

GraphAd MakeAd(const std::string& name, uint64_t fp, uint64_t bytes) {
  GraphAd ad;
  ad.name = name;
  ad.fingerprint = fp;
  ad.bytes = bytes;
  return ad;
}

TEST(ClusterWireTest, RegisterShardRoundTrip) {
  RegisterShardRequest req;
  req.shard_id = 7;
  req.port = 40123;
  req.ads = {MakeAd("acm", 0x1122334455667788ull, 4096),
             MakeAd("dblp", 0x99aabbccddeeff00ull, 1 << 20)};
  serve::WireWriter w;
  EncodeRegisterShardRequest(w, req);
  serve::WireReader r(w.payload());
  auto back = DecodeRegisterShardRequest(r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->shard_id, 7u);
  EXPECT_EQ(back->port, 40123);
  ASSERT_EQ(back->ads.size(), 2u);
  EXPECT_EQ(back->ads[0].name, "acm");
  EXPECT_EQ(back->ads[1].fingerprint, 0x99aabbccddeeff00ull);
  EXPECT_EQ(back->ads[1].bytes, 1u << 20);
  EXPECT_EQ(r.remaining(), 0u);

  serve::WireWriter wr;
  RegisterShardReply reply;
  reply.version = 41;
  reply.ttl_ms = 2500;
  EncodeRegisterShardReply(wr, reply);
  serve::WireReader rr(wr.payload());
  auto reply_back = DecodeRegisterShardReply(rr);
  ASSERT_TRUE(reply_back.ok());
  EXPECT_EQ(reply_back->version, 41u);
  EXPECT_EQ(reply_back->ttl_ms, 2500);
  EXPECT_EQ(rr.remaining(), 0u);
}

TEST(ClusterWireTest, HeartbeatRoundTrip) {
  HeartbeatRequest req;
  req.shard_id = 3;
  req.load.resident_bytes = 123456789;
  req.load.queue_depth = 4;
  req.load.inflight = 2;
  req.load.completed = 900;
  req.ads = {MakeAd("imdb", 42, 77)};
  serve::WireWriter w;
  EncodeHeartbeatRequest(w, req);
  serve::WireReader r(w.payload());
  auto back = DecodeHeartbeatRequest(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->shard_id, 3u);
  EXPECT_EQ(back->load.resident_bytes, 123456789u);
  EXPECT_EQ(back->load.queue_depth, 4);
  EXPECT_EQ(back->load.inflight, 2);
  EXPECT_EQ(back->load.completed, 900);
  ASSERT_EQ(back->ads.size(), 1u);
  EXPECT_EQ(back->ads[0].name, "imdb");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ClusterWireTest, PlacementAndPlaceRoundTrip) {
  Placement p;
  p.name = "acm";
  p.fingerprint = 0xdeadbeefcafef00dull;
  p.version = 17;
  p.shards = {{1, 40001, true}, {2, 40002, false}};
  serve::WireWriter w;
  EncodePlacement(w, p);
  serve::WireReader r(w.payload());
  auto back = DecodePlacement(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->name, "acm");
  EXPECT_EQ(back->fingerprint, 0xdeadbeefcafef00dull);
  EXPECT_EQ(back->version, 17u);
  ASSERT_EQ(back->shards.size(), 2u);
  EXPECT_TRUE(back->shards[0].alive);
  EXPECT_FALSE(back->shards[1].alive);
  EXPECT_EQ(back->shards[1].port, 40002);
  EXPECT_EQ(r.remaining(), 0u);

  PlaceRequest req;
  req.name = "acm";
  req.fingerprint = 5;
  req.bytes = 999;
  req.replicas = 2;
  req.shard_ids = {4, 9};
  serve::WireWriter wp;
  EncodePlaceRequest(wp, req);
  serve::WireReader rp(wp.payload());
  auto preq = DecodePlaceRequest(rp);
  ASSERT_TRUE(preq.ok());
  EXPECT_EQ(preq->name, "acm");
  EXPECT_EQ(preq->replicas, 2);
  EXPECT_EQ(preq->shard_ids, (std::vector<uint32_t>{4, 9}));
  EXPECT_EQ(rp.remaining(), 0u);
}

TEST(ClusterWireTest, ShardStatusListRoundTrip) {
  ShardStatus s;
  s.shard_id = 11;
  s.port = 40011;
  s.alive = false;
  s.heartbeat_age_ms = 3200;
  s.load.resident_bytes = 1 << 30;
  s.load.queue_depth = 1;
  s.load.inflight = 0;
  s.load.completed = 12;
  s.graphs = 3;
  serve::WireWriter w;
  EncodeShardStatusList(w, {s, s});
  serve::WireReader r(w.payload());
  auto back = DecodeShardStatusList(r);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].shard_id, 11u);
  EXPECT_FALSE((*back)[0].alive);
  EXPECT_EQ((*back)[0].heartbeat_age_ms, 3200);
  EXPECT_EQ((*back)[1].load.resident_bytes, 1u << 30);
  EXPECT_EQ((*back)[1].graphs, 3);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ClusterWireTest, WatchRoundTrip) {
  WatchRequest req;
  req.since_version = 40;
  req.timeout_ms = 750;
  serve::WireWriter w;
  EncodeWatchRequest(w, req);
  serve::WireReader r(w.payload());
  auto back = DecodeWatchRequest(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->since_version, 40u);
  EXPECT_EQ(back->timeout_ms, 750);
  EXPECT_EQ(r.remaining(), 0u);

  WatchResult res;
  res.version = 44;
  res.resync = false;
  MetaEvent e1;
  e1.version = 43;
  e1.type = MetaEventType::kShardDead;
  e1.shard_id = 2;
  MetaEvent e2;
  e2.version = 44;
  e2.type = MetaEventType::kPlacementChanged;
  e2.fingerprint = 0xabc;
  e2.name = "acm";
  res.events = {e1, e2};
  serve::WireWriter wr;
  EncodeWatchResult(wr, res);
  serve::WireReader rr(wr.payload());
  auto res_back = DecodeWatchResult(rr);
  ASSERT_TRUE(res_back.ok());
  EXPECT_EQ(res_back->version, 44u);
  EXPECT_FALSE(res_back->resync);
  ASSERT_EQ(res_back->events.size(), 2u);
  EXPECT_EQ(res_back->events[0].type, MetaEventType::kShardDead);
  EXPECT_EQ(res_back->events[1].name, "acm");
  EXPECT_EQ(rr.remaining(), 0u);
}

TEST(ClusterWireTest, MetaEventRejectsUnknownType) {
  serve::WireWriter w;
  w.PutU64(1);
  w.PutU8(99);  // not a MetaEventType
  w.PutU32(0);
  w.PutU64(0);
  w.PutString("");
  serve::WireReader r(w.payload());
  EXPECT_FALSE(DecodeMetaEvent(r).ok());
}

// Truncation at every offset: no decoder may succeed on a strict prefix
// (the encodings have no optional trailing fields).
TEST(ClusterWireTest, ReadersRejectTruncationAtEveryOffset) {
  RegisterShardRequest reg;
  reg.shard_id = 1;
  reg.port = 40001;
  reg.ads = {MakeAd("acm", 0x1234, 99)};
  serve::WireWriter w_reg;
  EncodeRegisterShardRequest(w_reg, reg);

  HeartbeatRequest hb;
  hb.shard_id = 1;
  hb.ads = {MakeAd("acm", 0x1234, 99)};
  serve::WireWriter w_hb;
  EncodeHeartbeatRequest(w_hb, hb);

  Placement p;
  p.name = "acm";
  p.fingerprint = 2;
  p.version = 3;
  p.shards = {{1, 40001, true}};
  serve::WireWriter w_p;
  EncodePlacement(w_p, p);

  PlaceRequest place;
  place.name = "acm";
  place.shard_ids = {1};
  serve::WireWriter w_place;
  EncodePlaceRequest(w_place, place);

  ShardStatus status;
  status.shard_id = 1;
  serve::WireWriter w_status;
  EncodeShardStatusList(w_status, {status});

  WatchResult res;
  res.version = 9;
  MetaEvent e;
  e.version = 9;
  e.type = MetaEventType::kPlacementChanged;
  e.name = "acm";
  res.events = {e};
  serve::WireWriter w_res;
  EncodeWatchResult(w_res, res);

  struct Case {
    const char* what;
    const std::string& payload;
    bool (*decodes)(std::string_view);
  };
  const Case cases[] = {
      {"RegisterShardRequest", w_reg.payload(),
       [](std::string_view s) {
         serve::WireReader r(s);
         return DecodeRegisterShardRequest(r).ok();
       }},
      {"HeartbeatRequest", w_hb.payload(),
       [](std::string_view s) {
         serve::WireReader r(s);
         return DecodeHeartbeatRequest(r).ok();
       }},
      {"Placement", w_p.payload(),
       [](std::string_view s) {
         serve::WireReader r(s);
         return DecodePlacement(r).ok();
       }},
      {"PlaceRequest", w_place.payload(),
       [](std::string_view s) {
         serve::WireReader r(s);
         return DecodePlaceRequest(r).ok();
       }},
      {"ShardStatusList", w_status.payload(),
       [](std::string_view s) {
         serve::WireReader r(s);
         return DecodeShardStatusList(r).ok();
       }},
      {"WatchResult", w_res.payload(),
       [](std::string_view s) {
         serve::WireReader r(s);
         return DecodeWatchResult(r).ok();
       }},
  };
  for (const Case& c : cases) {
    ASSERT_TRUE(c.decodes(c.payload)) << c.what;
    for (size_t cut = 0; cut < c.payload.size(); ++cut) {
      EXPECT_FALSE(
          c.decodes(std::string_view(c.payload).substr(0, cut)))
          << c.what << " decoded a prefix of length " << cut;
    }
  }
}

// A hostile count prefix (huge list length over a tiny payload) must be
// rejected before any allocation, not OOM the decoder.
TEST(ClusterWireTest, HostileListCountIsRejected) {
  serve::WireWriter w;
  w.PutU32(0xffffffffu);  // "4 billion ads"
  serve::WireReader r(w.payload());
  EXPECT_FALSE(DecodeGraphAdList(r).ok());

  serve::WireWriter ws;
  ws.PutU32(0xffffffffu);
  serve::WireReader rs(ws.payload());
  EXPECT_FALSE(DecodeShardStatusList(rs).ok());
}

// ---------------------------------------------------------------------------
// MetaService state machine (no sockets).

RegisterShardRequest Announce(uint32_t id, int port,
                              std::vector<GraphAd> ads = {}) {
  RegisterShardRequest req;
  req.shard_id = id;
  req.port = port;
  req.ads = std::move(ads);
  return req;
}

HeartbeatRequest Beat(uint32_t id, std::vector<GraphAd> ads,
                      uint64_t resident = 0) {
  HeartbeatRequest req;
  req.shard_id = id;
  req.load.resident_bytes = resident;
  req.ads = std::move(ads);
  return req;
}

TEST(MetaServiceTest, RegisterResolvePlaceRecord) {
  MetaService meta;
  const auto r1 = meta.RegisterShard(
      Announce(1, 40001, {MakeAd("acm", 0xa, 100)}));
  EXPECT_GT(r1.version, 0u);
  EXPECT_GT(r1.ttl_ms, 0);
  meta.RegisterShard(Announce(2, 40002));

  auto placement = meta.Resolve("acm");
  ASSERT_TRUE(placement.ok()) << placement.status().ToString();
  EXPECT_EQ(placement->fingerprint, 0xaull);
  ASSERT_EQ(placement->shards.size(), 1u);
  EXPECT_EQ(placement->shards[0].shard_id, 1u);
  EXPECT_TRUE(placement->shards[0].alive);
  EXPECT_EQ(meta.Resolve("nope").status().code(), StatusCode::kNotFound);

  // Plan: 2 replicas of a new graph land on both live shards, without
  // mutating the placement map.
  PlaceRequest plan;
  plan.name = "dblp";
  plan.bytes = 500;
  plan.replicas = 2;
  auto planned = meta.Place(plan);
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->shards.size(), 2u);
  EXPECT_EQ(meta.Resolve("dblp").status().code(), StatusCode::kNotFound);

  // Record commits it and bumps the version.
  const uint64_t before = meta.version();
  PlaceRequest record;
  record.name = "dblp";
  record.fingerprint = 0xb;
  record.bytes = 500;
  record.shard_ids = {1, 2};
  auto committed = meta.Place(record);
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(committed->shards.size(), 2u);
  EXPECT_GT(meta.version(), before);
  auto resolved = meta.Resolve("dblp");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->shards.size(), 2u);
}

TEST(MetaServiceTest, PlanPicksLeastLoadedAndExcludesHolders) {
  MetaService meta;
  meta.RegisterShard(Announce(1, 40001, {MakeAd("acm", 0xa, 100)}));
  meta.RegisterShard(Announce(2, 40002));
  meta.RegisterShard(Announce(3, 40003));
  // Shard 2 is heavily loaded; shard 3 is idle.
  ASSERT_TRUE(meta.Heartbeat(Beat(2, {}, /*resident=*/1 << 28)).ok());
  ASSERT_TRUE(meta.Heartbeat(Beat(3, {}, /*resident=*/0)).ok());

  // One extra replica of acm: shard 1 already holds it, so the plan must
  // pick from {2, 3} — and 3 is the least loaded.
  PlaceRequest plan;
  plan.name = "acm";
  plan.fingerprint = 0xa;
  plan.bytes = 100;
  plan.replicas = 1;
  auto planned = meta.Place(plan);
  ASSERT_TRUE(planned.ok());
  ASSERT_EQ(planned->shards.size(), 1u);
  EXPECT_EQ(planned->shards[0].shard_id, 3u);
}

TEST(MetaServiceTest, PlaceWithNoLiveShardFailsCleanly) {
  MetaService meta;
  PlaceRequest plan;
  plan.name = "acm";
  plan.replicas = 1;
  auto planned = meta.Place(plan);
  ASSERT_FALSE(planned.ok());
  EXPECT_EQ(planned.status().code(), StatusCode::kFailedPrecondition);
}

TEST(MetaServiceTest, HeartbeatReconcilesAdvertisedSet) {
  MetaService meta;
  meta.RegisterShard(Announce(1, 40001, {MakeAd("acm", 0xa, 100)}));

  // Heartbeat for a shard that never registered: NotFound (the agent
  // re-registers on that signal).
  EXPECT_EQ(meta.Heartbeat(Beat(9, {})).status().code(),
            StatusCode::kNotFound);

  // acm disappears, dblp appears: placements follow.
  ASSERT_TRUE(meta.Heartbeat(Beat(1, {MakeAd("dblp", 0xb, 50)})).ok());
  EXPECT_EQ(meta.Resolve("acm").status().code(), StatusCode::kNotFound);
  auto dblp = meta.Resolve("dblp");
  ASSERT_TRUE(dblp.ok());
  EXPECT_EQ(dblp->shards.size(), 1u);
}

TEST(MetaServiceTest, TtlMarksDeadWatchersWakeAndHeartbeatRevives) {
  MetaServiceOptions options;
  options.heartbeat_ttl_ms = 100;
  MetaService meta(options);
  meta.RegisterShard(Announce(1, 40001, {MakeAd("acm", 0xa, 100)}));
  const uint64_t after_join = meta.version();

  // A watcher blocked past the TTL is woken by the liveness expiry.
  WatchResult res = meta.Watch(after_join, /*timeout_ms=*/2000);
  ASSERT_FALSE(res.resync);
  ASSERT_FALSE(res.events.empty());
  EXPECT_EQ(res.events.back().type, MetaEventType::kShardDead);
  EXPECT_EQ(res.events.back().shard_id, 1u);

  // Dead is a flag, not removal: the placement survives with alive=false.
  auto placement = meta.Resolve("acm");
  ASSERT_TRUE(placement.ok());
  ASSERT_EQ(placement->shards.size(), 1u);
  EXPECT_FALSE(placement->shards[0].alive);
  auto shards = meta.ListShards();
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_FALSE(shards[0].alive);

  // A late heartbeat revives the shard and emits a join event.
  ASSERT_TRUE(meta.Heartbeat(Beat(1, {MakeAd("acm", 0xa, 100)})).ok());
  placement = meta.Resolve("acm");
  ASSERT_TRUE(placement.ok());
  EXPECT_TRUE(placement->shards[0].alive);
  WatchResult revived = meta.Watch(res.version, /*timeout_ms=*/0);
  ASSERT_FALSE(revived.events.empty());
  bool saw_join = false;
  for (const MetaEvent& e : revived.events) {
    saw_join = saw_join || e.type == MetaEventType::kShardJoined;
  }
  EXPECT_TRUE(saw_join);
}

TEST(MetaServiceTest, WatchTimesOutEmptyAndResyncsWhenBehind) {
  MetaServiceOptions options;
  options.max_events = 2;
  MetaService meta(options);

  // Nothing has happened: an immediate watch returns empty, no resync.
  WatchResult idle = meta.Watch(0, /*timeout_ms=*/0);
  EXPECT_FALSE(idle.resync);
  EXPECT_TRUE(idle.events.empty());
  EXPECT_EQ(idle.version, 0u);

  // Generate more events than the log retains: a watcher at version 0
  // must be told to resync instead of getting a gapped replay.
  meta.RegisterShard(Announce(1, 40001, {MakeAd("a", 1, 1)}));
  meta.RegisterShard(Announce(2, 40002, {MakeAd("b", 2, 1)}));
  ASSERT_GT(meta.version(), 2u);
  WatchResult behind = meta.Watch(0, /*timeout_ms=*/0);
  EXPECT_TRUE(behind.resync);
  EXPECT_TRUE(behind.events.empty());
  EXPECT_EQ(behind.version, meta.version());

  // A watcher inside the retained window gets a normal replay.
  WatchResult tail = meta.Watch(meta.version() - 1, /*timeout_ms=*/0);
  EXPECT_FALSE(tail.resync);
  ASSERT_EQ(tail.events.size(), 1u);
  EXPECT_EQ(tail.events[0].version, meta.version());
}

TEST(MetaServiceTest, CloseWakesBlockedWatchers) {
  MetaService meta;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    meta.Close();
  });
  const auto start = std::chrono::steady_clock::now();
  WatchResult res = meta.Watch(0, /*timeout_ms=*/10000);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  closer.join();
  EXPECT_TRUE(res.events.empty());
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

// ---------------------------------------------------------------------------
// Wire end-to-end: MetaServer + MetaClient over loopback TCP.

TEST(MetaServerTest, HandshakeOpsAndServeOpRejection) {
  MetaServer server;
  const Status st = server.Start();
  if (!st.ok()) {
    GTEST_SKIP() << "cannot bind a loopback socket here: " << st.ToString();
  }

  // The Ping handshake identifies the meta role; MetaClient::Connect
  // enforces it, and a raw serve client can read it too.
  serve::ServeClient raw;
  ASSERT_TRUE(raw.Connect(server.port()).ok());
  auto hello = raw.Hello();
  ASSERT_TRUE(hello.ok());
  EXPECT_EQ(hello->protocol_version, serve::kProtocolVersion);
  EXPECT_EQ(hello->role, "meta");
  EXPECT_NE(hello->features & serve::kFeatureClusterOps, 0u);

  // Graph ops aimed at the meta service fail with a pointer to the
  // shards, not a frame error.
  auto condense = raw.Condense({});
  ASSERT_FALSE(condense.ok());
  EXPECT_EQ(condense.status().code(), StatusCode::kFailedPrecondition);

  MetaClient meta;
  ASSERT_TRUE(meta.Connect(server.port()).ok());
  auto reg = meta.RegisterShard(Announce(1, 40001, {MakeAd("acm", 0xa, 9)}));
  ASSERT_TRUE(reg.ok());
  EXPECT_GT(reg->ttl_ms, 0);
  auto hb = meta.Heartbeat(Beat(1, {MakeAd("acm", 0xa, 9)}));
  ASSERT_TRUE(hb.ok());
  auto placement = meta.Resolve("acm");
  ASSERT_TRUE(placement.ok());
  EXPECT_EQ(placement->shards.size(), 1u);
  auto shards = meta.ListShards();
  ASSERT_TRUE(shards.ok());
  ASSERT_EQ(shards->size(), 1u);
  EXPECT_EQ((*shards)[0].graphs, 1);
  auto stats = meta.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"shards\""), std::string::npos) << *stats;

  // Watch over the wire: a placement change lands as an event.
  auto watch_before = meta.Watch(0, /*timeout_ms=*/0);
  ASSERT_TRUE(watch_before.ok());
  MetaClient writer;
  ASSERT_TRUE(writer.Connect(server.port()).ok());
  ASSERT_TRUE(
      writer.Heartbeat(Beat(1, {MakeAd("dblp", 0xb, 9)})).ok());
  auto watch = meta.Watch(watch_before->version, /*timeout_ms=*/2000);
  ASSERT_TRUE(watch.ok());
  EXPECT_FALSE(watch->events.empty());

  ASSERT_TRUE(meta.Shutdown().ok());
  server.Wait();
}

TEST(MetaClientTest, RefusesServeServers) {
  serve::ServerOptions options;
  options.serve.slots = 1;
  options.serve.queue_capacity = 4;
  options.serve.threads_per_slot = 1;
  serve::Server server(options);
  const Status st = server.Start();
  if (!st.ok()) {
    GTEST_SKIP() << "cannot bind a loopback socket here: " << st.ToString();
  }
  MetaClient meta;
  const Status conn = meta.Connect(server.port());
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(conn.message().find("serve"), std::string::npos)
      << conn.ToString();
  server.RequestStop();
  server.Wait();
}

// ---------------------------------------------------------------------------
// Full cluster in one process: meta + two shards + router, with failover.

serve::ServeOptions ShardServeOptions() {
  serve::ServeOptions opts;
  opts.slots = 1;
  opts.queue_capacity = 16;
  opts.threads_per_slot = 1;
  return opts;
}

TEST(ClusterEndToEndTest, UploadRouteFailoverAndDeadShardReporting) {
  MetaServerOptions meta_options;
  meta_options.meta.heartbeat_ttl_ms = 400;
  MetaServer meta(meta_options);
  if (!meta.Start().ok()) GTEST_SKIP() << "cannot bind loopback sockets";

  serve::ServerOptions shard_options;
  shard_options.serve = ShardServeOptions();
  serve::Server shard1(shard_options);
  serve::Server shard2(shard_options);
  if (!shard1.Start().ok() || !shard2.Start().ok()) {
    GTEST_SKIP() << "cannot bind loopback sockets";
  }

  ShardAgentOptions a1;
  a1.shard_id = 1;
  a1.meta_port = meta.port();
  a1.serve_port = shard1.port();
  a1.heartbeat_ms = 100;
  ShardAgent agent1(a1, &shard1.service());
  ASSERT_TRUE(agent1.Start().ok());
  ShardAgentOptions a2 = a1;
  a2.shard_id = 2;
  a2.serve_port = shard2.port();
  ShardAgent agent2(a2, &shard2.service());
  ASSERT_TRUE(agent2.Start().ok());

  RouterOptions router_options;
  router_options.meta_port = meta.port();
  router_options.backoff_ms = 10;
  Router router(router_options);
  ASSERT_TRUE(router.Connect().ok());

  // Routed upload onto both shards.
  auto container = SerializeHeteroGraph(datasets::MakeToy(5));
  ASSERT_TRUE(container.ok());
  auto info = router.Upload("toy", *container, /*replicas=*/2);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  auto placement = router.Resolve("toy");
  ASSERT_TRUE(placement.ok());
  EXPECT_EQ(placement->shards.size(), 2u);

  serve::CondenseRequest req;
  req.graph = "toy";
  req.method = "freehgc";
  req.ratio = 0.3;
  req.seed = 1;
  req.max_paths = 6;
  auto reply = router.Condense(req);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_GT(reply->nodes, 0);

  // Kill shard 2 abruptly (listener + agent, as SIGKILL would). Every
  // subsequent request must still succeed via shard 1.
  agent2.Stop();
  shard2.RequestStop();
  shard2.Wait();
  for (int i = 0; i < 6; ++i) {
    req.seed = static_cast<uint64_t>(2 + i);
    auto failover_reply = router.Condense(req);
    ASSERT_TRUE(failover_reply.ok())
        << "request " << i << ": " << failover_reply.status().ToString();
  }

  // The meta service declares shard 2 dead once its TTL lapses.
  bool reported_dead = false;
  for (int i = 0; i < 50 && !reported_dead; ++i) {
    auto shards = router.Shards();
    ASSERT_TRUE(shards.ok());
    for (const ShardStatus& s : *shards) {
      if (s.shard_id == 2 && !s.alive) reported_dead = true;
    }
    if (!reported_dead) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  EXPECT_TRUE(reported_dead) << "meta never marked the killed shard dead";

  router.Close();
  agent1.Stop();
  shard1.RequestStop();
  shard1.Wait();
  meta.RequestStop();
  meta.Wait();
}

// Hot single-homed graphs get replicated to a second shard via
// shard-to-shard FetchGraph, without the client re-uploading.
TEST(ClusterEndToEndTest, HotGraphReplicatesToSecondShard) {
  MetaServer meta;
  if (!meta.Start().ok()) GTEST_SKIP() << "cannot bind loopback sockets";

  serve::ServerOptions shard_options;
  shard_options.serve = ShardServeOptions();
  serve::Server shard1(shard_options);
  serve::Server shard2(shard_options);
  if (!shard1.Start().ok() || !shard2.Start().ok()) {
    GTEST_SKIP() << "cannot bind loopback sockets";
  }
  ShardAgentOptions a1;
  a1.shard_id = 1;
  a1.meta_port = meta.port();
  a1.serve_port = shard1.port();
  a1.heartbeat_ms = 100;
  ShardAgent agent1(a1, &shard1.service());
  ASSERT_TRUE(agent1.Start().ok());
  ShardAgentOptions a2 = a1;
  a2.shard_id = 2;
  a2.serve_port = shard2.port();
  ShardAgent agent2(a2, &shard2.service());
  ASSERT_TRUE(agent2.Start().ok());

  RouterOptions router_options;
  router_options.meta_port = meta.port();
  router_options.hot_threshold = 3;  // replicate on the 3rd request
  Router router(router_options);
  ASSERT_TRUE(router.Connect().ok());

  auto container = SerializeHeteroGraph(datasets::MakeToy(5));
  ASSERT_TRUE(container.ok());
  ASSERT_TRUE(router.Upload("toy", *container, /*replicas=*/1).ok());

  serve::CondenseRequest req;
  req.graph = "toy";
  req.method = "freehgc";
  req.ratio = 0.3;
  req.seed = 1;
  req.max_paths = 6;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(router.Condense(req).ok());
  }
  EXPECT_EQ(router.stats().replications, 1);
  auto placement = router.Resolve("toy");
  ASSERT_TRUE(placement.ok());
  EXPECT_EQ(placement->shards.size(), 2u);
  // Both shards now really hold the graph.
  EXPECT_EQ(shard1.service().store().Count(), 1);
  EXPECT_EQ(shard2.service().store().Count(), 1);

  router.Close();
  agent1.Stop();
  agent2.Stop();
  shard1.RequestStop();
  shard1.Wait();
  shard2.RequestStop();
  shard2.Wait();
  meta.RequestStop();
  meta.Wait();
}

}  // namespace
}  // namespace freehgc::cluster
