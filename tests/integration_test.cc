// Cross-module integration tests: the full condense -> train -> evaluate
// pipeline, and the qualitative orderings the paper's evaluation rests on.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "baselines/coreset.h"
#include "core/freehgc.h"
#include "datasets/generator.h"
#include "eval/experiment.h"
#include "graph/serialize.h"
#include "hgnn/trainer.h"

namespace freehgc {
namespace {

struct Fixture {
  HeteroGraph graph;
  hgnn::EvalContext ctx;
};

Fixture MakeAcmFixture(uint64_t seed) {
  Fixture f;
  f.graph = datasets::MakeAcm(seed, /*scale=*/0.15);
  hgnn::PropagateOptions popts;
  popts.max_hops = 2;
  popts.max_paths = 10;
  f.ctx = hgnn::BuildEvalContext(f.graph, popts);
  return f;
}

hgnn::HgnnConfig FastConfig() {
  hgnn::HgnnConfig cfg;
  cfg.hidden = 24;
  cfg.epochs = 60;
  cfg.patience = 0;
  return cfg;
}

TEST(IntegrationTest, FreeHgcBeatsRandomSelection) {
  const Fixture f = MakeAcmFixture(101);
  eval::RunOptions run;
  run.ratio = 0.05;
  run.seed = 1;
  const auto free_res =
      eval::RunMethod(f.ctx, eval::MethodKind::kFreeHGC, run, FastConfig());
  const auto rand_res =
      eval::RunMethod(f.ctx, eval::MethodKind::kRandom, run, FastConfig());
  ASSERT_TRUE(free_res.ok() && rand_res.ok());
  // The paper's central claim at the smallest scale we test: structure-
  // aware selection beats structure-blind random selection.
  EXPECT_GT(free_res->accuracy, rand_res->accuracy - 1.0f);
}

TEST(IntegrationTest, AccuracyGrowsWithRatio) {
  // Fig. 7's monotonicity claim (allowing small noise): FreeHGC accuracy
  // at a large ratio exceeds accuracy at a tiny ratio.
  const Fixture f = MakeAcmFixture(103);
  eval::RunOptions run;
  run.seed = 2;
  run.ratio = 0.012;
  const auto lo =
      eval::RunMethod(f.ctx, eval::MethodKind::kFreeHGC, run, FastConfig());
  run.ratio = 0.12;
  const auto hi =
      eval::RunMethod(f.ctx, eval::MethodKind::kFreeHGC, run, FastConfig());
  ASSERT_TRUE(lo.ok() && hi.ok());
  EXPECT_GE(hi->accuracy, lo->accuracy - 1.0f);
}

TEST(IntegrationTest, FreeHgcCondensesFasterThanGradientMatching) {
  const Fixture f = MakeAcmFixture(105);
  eval::RunOptions run;
  run.ratio = 0.024;
  run.seed = 3;
  const auto free_res =
      eval::RunMethod(f.ctx, eval::MethodKind::kFreeHGC, run, FastConfig());
  const auto hg_res =
      eval::RunMethod(f.ctx, eval::MethodKind::kHGCond, run, FastConfig());
  ASSERT_TRUE(free_res.ok() && hg_res.ok());
  // Training-free condensation must be cheaper than bi-level gradient
  // matching with clustering + OPS (Figs. 2b / 8).
  EXPECT_LT(free_res->condense_seconds, hg_res->condense_seconds);
}

TEST(IntegrationTest, CondensedStorageMuchSmallerThanWhole) {
  const Fixture f = MakeAcmFixture(107);
  core::FreeHgcOptions opts;
  opts.ratio = 0.024;
  opts.max_paths = 10;
  auto res = core::Condense(f.graph, opts);
  ASSERT_TRUE(res.ok());
  // Table VII: ~95%+ storage reduction at r=2.4%.
  EXPECT_LT(res->graph.MemoryBytes(), f.graph.MemoryBytes() / 10);
}

TEST(IntegrationTest, GeneralizationAcrossAllFiveHgnns) {
  // Table IV's protocol: one condensed graph, five evaluator models; every
  // model must beat chance by a clear margin.
  const Fixture f = MakeAcmFixture(109);
  core::FreeHgcOptions opts;
  opts.ratio = 0.1;
  opts.max_paths = 10;
  auto res = core::Condense(f.graph, opts);
  ASSERT_TRUE(res.ok());
  const float chance = 1.0f / static_cast<float>(f.graph.num_classes());
  for (auto kind :
       {hgnn::HgnnKind::kHeteroSGC, hgnn::HgnnKind::kSeHGNN,
        hgnn::HgnnKind::kHAN, hgnn::HgnnKind::kHGB, hgnn::HgnnKind::kHGT}) {
    hgnn::HgnnConfig cfg = FastConfig();
    cfg.kind = kind;
    const hgnn::EvalMetrics m =
        hgnn::TrainAndEvaluate(f.ctx, res->graph, cfg);
    EXPECT_GT(m.test_accuracy, 1.5f * chance) << hgnn::HgnnKindName(kind);
  }
}

TEST(IntegrationTest, WholePipelineDeterministic) {
  const Fixture f = MakeAcmFixture(111);
  eval::RunOptions run;
  run.ratio = 0.05;
  run.seed = 9;
  const auto a =
      eval::RunMethod(f.ctx, eval::MethodKind::kFreeHGC, run, FastConfig());
  const auto b =
      eval::RunMethod(f.ctx, eval::MethodKind::kFreeHGC, run, FastConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FLOAT_EQ(a->accuracy, b->accuracy);
  EXPECT_EQ(a->storage_bytes, b->storage_bytes);
}

TEST(IntegrationTest, MappedGraphCondensesBitIdenticallyToHeapGraph) {
  // The zero-copy acceptance property end to end: run the full FreeHGC
  // pipeline once against the heap-resident graph and once against the
  // same graph mapped from a v3 container. Every kernel reads through
  // ArrayRef spans, so the condensed outputs must be bit-identical, not
  // just statistically close.
  const HeteroGraph heap = datasets::MakeAcm(117, /*scale=*/0.15);
  const std::string path = "/tmp/freehgc_test_integration_v3.fhgc";
  ASSERT_TRUE(SaveHeteroGraphV3(heap, path).ok());
  auto mapped = MapHeteroGraph(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  ASSERT_EQ(mapped->ContentFingerprint(), heap.ContentFingerprint());
  core::FreeHgcOptions opts;
  opts.ratio = 0.05;
  opts.max_paths = 10;
  auto a = core::Condense(heap, opts);
  auto b = core::Condense(*mapped, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->graph.ContentFingerprint(), b->graph.ContentFingerprint());
  EXPECT_EQ(a->graph.MemoryBytes(), b->graph.MemoryBytes());
  std::remove(path.c_str());
}

TEST(IntegrationTest, DeepHierarchyDatasetEndToEnd) {
  // DBLP-style graph exercises the father/leaf split (Fig. 5 middle).
  HeteroGraph g = datasets::MakeDblp(113, /*scale=*/0.1);
  hgnn::PropagateOptions popts;
  popts.max_hops = 3;
  popts.max_paths = 10;
  const hgnn::EvalContext ctx = hgnn::BuildEvalContext(g, popts);
  eval::RunOptions run;
  run.ratio = 0.05;
  const auto res =
      eval::RunMethod(ctx, eval::MethodKind::kFreeHGC, run, FastConfig());
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_GT(res->accuracy, 100.0f / static_cast<float>(g.num_classes()));
}

}  // namespace
}  // namespace freehgc
