#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/timer.h"
#include "core/freehgc.h"
#include "datasets/generator.h"
#include "exec/exec_context.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sparse/csr.h"
#include "sparse/ops.h"

namespace freehgc {
namespace {

using obs::MetricsRegistry;
using obs::SpanRecord;

/// Spans with a given name, in recording order.
std::vector<SpanRecord> SpansNamed(const std::vector<SpanRecord>& spans,
                                   const std::string& name) {
  std::vector<SpanRecord> out;
  for (const SpanRecord& s : spans) {
    if (name == s.name) out.push_back(s);
  }
  return out;
}

/// A small deterministic sparse matrix for kernel-driving tests.
CsrMatrix TestMatrix(int32_t n, uint64_t seed) {
  std::vector<CooEntry> entries;
  uint64_t state = seed;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int32_t r = 0; r < n; ++r) {
    for (int k = 0; k < 8; ++k) {
      const int32_t c = static_cast<int32_t>(next() % n);
      entries.push_back({r, c, 1.0f + static_cast<float>(next() % 7)});
    }
  }
  auto res = CsrMatrix::FromCoo(n, n, std::move(entries));
  EXPECT_TRUE(res.ok());
  return std::move(res).value();
}

class TracingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::ClearTrace();
    obs::SetTracingEnabled(true);
  }
  void TearDown() override {
    obs::SetTracingEnabled(false);
    obs::ClearTrace();
  }
};

TEST_F(TracingTest, SpanNestingAndOrdering) {
  {
    FREEHGC_TRACE_SPAN("outer");
    {
      FREEHGC_TRACE_SPAN("inner_a");
    }
    {
      FREEHGC_TRACE_SPAN("inner_b");
    }
  }
  const auto spans = obs::SnapshotSpans();
  const auto outer = SpansNamed(spans, "outer");
  const auto inner_a = SpansNamed(spans, "inner_a");
  const auto inner_b = SpansNamed(spans, "inner_b");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner_a.size(), 1u);
  ASSERT_EQ(inner_b.size(), 1u);

  // Children close before the parent and are contained in it.
  EXPECT_GE(inner_a[0].begin_ns, outer[0].begin_ns);
  EXPECT_LE(inner_a[0].end_ns, outer[0].end_ns);
  EXPECT_GE(inner_b[0].begin_ns, inner_a[0].end_ns);
  EXPECT_LE(inner_b[0].end_ns, outer[0].end_ns);
  // All on the recording thread, and spans close after they open.
  EXPECT_EQ(inner_a[0].tid, outer[0].tid);
  for (const SpanRecord& s : {outer[0], inner_a[0], inner_b[0]}) {
    EXPECT_LE(s.begin_ns, s.end_ns);
  }
}

TEST_F(TracingTest, DisabledTracerRecordsNothing) {
  obs::SetTracingEnabled(false);
  {
    FREEHGC_TRACE_SPAN("ghost");
  }
  EXPECT_TRUE(SpansNamed(obs::SnapshotSpans(), "ghost").empty());
}

TEST_F(TracingTest, SpanOpenWhileTracingOffIsDropped) {
  obs::SetTracingEnabled(false);
  {
    obs::ScopedSpan span("late_enable");
    obs::SetTracingEnabled(true);
    // Enabled only after the span was constructed: nothing recorded.
  }
  EXPECT_TRUE(SpansNamed(obs::SnapshotSpans(), "late_enable").empty());
}

TEST_F(TracingTest, ParallelForSpansCarryWorkerAttribution) {
  exec::ExecContext ex(4);
  ex.ParallelFor(10000, 1, [](int64_t, int64_t, exec::Workspace&) {});
  const auto spans =
      SpansNamed(obs::SnapshotSpans(), "parallel_for");
  ASSERT_FALSE(spans.empty());
  for (const SpanRecord& s : spans) {
    EXPECT_GE(s.worker, 0);
    EXPECT_LT(s.worker, 4);
  }
  // Every worker participated in the invoke.
  std::vector<int32_t> workers;
  for (const SpanRecord& s : spans) workers.push_back(s.worker);
  std::sort(workers.begin(), workers.end());
  workers.erase(std::unique(workers.begin(), workers.end()), workers.end());
  EXPECT_EQ(workers.size(), 4u);
}

TEST_F(TracingTest, ChromeTraceExportIsWellFormed) {
  {
    FREEHGC_TRACE_SPAN("export_me");
  }
  exec::ExecContext ex(2);
  const CsrMatrix a = TestMatrix(200, 1);
  sparse::SpGemm(a, a, 64, &ex);

  const std::string path = ::testing::TempDir() + "/freehgc_trace.json";
  ASSERT_TRUE(obs::WriteChromeTrace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();

  // Structural sanity (CI additionally runs python3 -m json.tool on a
  // real trace): an object wrapping a traceEvents array, balanced
  // delimiters, and the spans we just recorded.
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"export_me\""), std::string::npos);
  EXPECT_NE(json.find("\"spgemm\""), std::string::npos);
  EXPECT_NE(json.find("\"parallel_for\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  std::remove(path.c_str());
}

TEST(MetricsTest, CounterAggregationAcrossParallelForWorkers) {
  obs::Counter& c =
      MetricsRegistry::Global().GetCounter("test.obs_counter");
  for (int threads : {1, 2, 4}) {
    c.Reset();
    exec::ExecContext ex(threads);
    ex.ParallelFor(12345, 16,
                   [&](int64_t begin, int64_t end, exec::Workspace&) {
                     c.Add(end - begin);
                   });
    EXPECT_EQ(c.Value(), 12345) << "threads=" << threads;
  }
}

TEST(MetricsTest, GaugeUpdateMaxKeepsHighWaterMark) {
  obs::Gauge& g = MetricsRegistry::Global().GetGauge("test.obs_gauge");
  g.Reset();
  g.UpdateMax(10);
  g.UpdateMax(3);
  EXPECT_EQ(g.Value(), 10);
  g.UpdateMax(25);
  EXPECT_EQ(g.Value(), 25);
}

TEST(MetricsTest, HistogramBucketsPowerOfTwo) {
  EXPECT_EQ(obs::Histogram::BucketIndex(0), 0);
  EXPECT_EQ(obs::Histogram::BucketIndex(1), 0);
  EXPECT_EQ(obs::Histogram::BucketIndex(2), 1);
  EXPECT_EQ(obs::Histogram::BucketIndex(3), 2);
  EXPECT_EQ(obs::Histogram::BucketIndex(4), 2);
  EXPECT_EQ(obs::Histogram::BucketIndex(5), 3);
  EXPECT_EQ(obs::Histogram::BucketIndex(8), 3);
  EXPECT_EQ(obs::Histogram::BucketIndex(9), 4);

  obs::Histogram& h =
      MetricsRegistry::Global().GetHistogram("test.obs_hist");
  h.Reset();
  for (int64_t v : {1, 2, 3, 4, 100}) h.Observe(v);
  EXPECT_EQ(h.Count(), 5);
  EXPECT_EQ(h.Sum(), 110);
  EXPECT_EQ(h.BucketCount(0), 1);
  EXPECT_EQ(h.BucketCount(1), 1);
  EXPECT_EQ(h.BucketCount(2), 2);
  EXPECT_EQ(h.BucketCount(7), 1);  // 100 -> (64, 128]
}

TEST(MetricsTest, HistogramApproxQuantile) {
  obs::Histogram& h =
      MetricsRegistry::Global().GetHistogram("test.obs_quantile");
  h.Reset();
  EXPECT_EQ(h.ApproxQuantile(0.5), 0);  // empty

  // 100 samples of 1000: every quantile lands in 1000's bucket,
  // (512, 1024], so the estimate is bounded by a factor of two.
  for (int i = 0; i < 100; ++i) h.Observe(1000);
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    const int64_t est = h.ApproxQuantile(q);
    EXPECT_GT(est, 512) << "q=" << q;
    EXPECT_LE(est, 1024) << "q=" << q;
  }

  // A bimodal distribution: p50 must sit in the low mode's bucket and
  // p99 in the high mode's.
  h.Reset();
  for (int i = 0; i < 90; ++i) h.Observe(10);
  for (int i = 0; i < 10; ++i) h.Observe(100000);
  EXPECT_LE(h.ApproxQuantile(0.5), 16);
  EXPECT_GT(h.ApproxQuantile(0.99), 65536);
  // Quantiles are monotone in q.
  EXPECT_LE(h.ApproxQuantile(0.25), h.ApproxQuantile(0.75));
}

TEST(MetricsTest, HistogramQuantileOverloadTailAllInTopBucket) {
  // The overload-tail edge case the serve bench's p99 reporting leans
  // on: every observation lands in one high bucket (a saturated server
  // pins latencies to the same decade). The estimate must stay inside
  // that bucket for every q and remain monotone — no falling back to
  // the mean, no walking past the last bucket.
  obs::Histogram& h =
      MetricsRegistry::Global().GetHistogram("test.obs_top_bucket");
  h.Reset();
  const int64_t v = int64_t{3} << 32;  // ~12.9 s in ns, bucket (2^33, 2^34]
  for (int i = 0; i < 1000; ++i) h.Observe(v);
  int64_t prev = 0;
  for (double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const int64_t est = h.ApproxQuantile(q);
    EXPECT_GT(est, int64_t{1} << 33) << "q=" << q;
    EXPECT_LE(est, int64_t{1} << 34) << "q=" << q;
    EXPECT_GE(est, prev) << "q=" << q;
    prev = est;
  }

  // Values past the largest power-of-two boundary clamp into the final
  // bucket rather than indexing out of range, and the quantile stays
  // within that bucket's bounds.
  h.Reset();
  const int64_t huge = (int64_t{1} << 62) + 12345;
  EXPECT_EQ(obs::Histogram::BucketIndex(huge), 62);
  h.Observe(huge);
  const int64_t p99 = h.ApproxQuantile(0.99);
  EXPECT_GT(p99, int64_t{1} << 61);
  EXPECT_LE(p99, int64_t{1} << 62);
}

TEST(MetricsTest, ScrapedQuantileMatchesServerAtOverloadTail) {
  // p99-from-METRICS must agree with the server-side estimate when the
  // whole distribution sits in the top occupied bucket (the shape an
  // overloaded phase produces) — this is the reconstruction the load
  // harness and dashboards rely on.
  MetricsRegistry reg;
  obs::Histogram& h = reg.GetHistogram("overload.lat");
  for (int i = 0; i < 500; ++i) h.Observe(int64_t{5} << 30);
  const auto samples = obs::ParsePrometheusText(obs::PrometheusText(reg));
  const auto buckets = obs::PromBuckets(samples, "freehgc_overload_lat");
  for (double q : {0.5, 0.99}) {
    const double scraped = obs::QuantileFromCumulativeBuckets(buckets, q);
    const double server = static_cast<double>(h.ApproxQuantile(q));
    EXPECT_NEAR(scraped, server, server * 0.01 + 2.0) << "q=" << q;
    EXPECT_GT(scraped, static_cast<double>(int64_t{1} << 32));
    EXPECT_LE(scraped, static_cast<double>(int64_t{1} << 33));
  }
}

/// The determinism contract extended to metrics: every *value* metric a
/// kernel emits is a sum of per-chunk contributions with a thread-count
/// independent chunk layout, so 1, 2 and 4 workers must agree bit for
/// bit. (Timing counters — names ending in _ns — measure the schedule
/// and are exempt.)
TEST(MetricsTest, KernelValueMetricsDeterministicAcrossThreadCounts) {
  const CsrMatrix a = TestMatrix(300, 7);
  const CsrMatrix b = TestMatrix(300, 11);
  MetricsRegistry& reg = MetricsRegistry::Global();
  const std::vector<std::string> value_counters = {
      "spgemm.calls", "spgemm.flops", "spgemm.output_nnz",
      "spgemm.rows_truncated", "spgemm.entries_dropped",
      "exec.parallel_for_calls", "exec.chunks"};

  // exec.* metrics are per-invoke and only collected while armed.
  obs::SetDetailedMetricsEnabled(true);
  std::vector<std::vector<int64_t>> per_thread_values;
  std::vector<std::pair<int64_t, int64_t>> hist_shape;
  for (int threads : {1, 2, 4}) {
    reg.ResetAll();
    exec::ExecContext ex(threads);
    const CsrMatrix c = sparse::SpGemm(a, b, 32, &ex);
    EXPECT_GT(c.nnz(), 0);
    std::vector<int64_t> values;
    for (const std::string& name : value_counters) {
      values.push_back(reg.GetCounter(name).Value());
    }
    per_thread_values.push_back(std::move(values));
    obs::Histogram& h = reg.GetHistogram("spgemm.row_nnz");
    hist_shape.emplace_back(h.Count(), h.Sum());
  }
  for (size_t i = 1; i < per_thread_values.size(); ++i) {
    EXPECT_EQ(per_thread_values[i], per_thread_values[0]);
    EXPECT_EQ(hist_shape[i], hist_shape[0]);
  }
  // The truncation budget of 32 actually fired (the metric is live).
  EXPECT_GT(per_thread_values[0][3], 0);
  obs::SetDetailedMetricsEnabled(false);
  reg.ResetAll();
}

TEST(MetricsTest, DumpJsonIsBalancedAndContainsSections) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.obs_counter").Add(3);
  reg.GetHistogram("test.obs_hist").Observe(5);
  const std::string json = reg.DumpJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.obs_counter\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ScopedTimerTest, AccumulatesIntoDouble) {
  double acc = 0.0;
  {
    ScopedTimer t(acc);
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  }
  EXPECT_GT(acc, 0.0);
  const double first = acc;
  {
    ScopedTimer t(acc);
  }
  EXPECT_GE(acc, first);  // += semantics, not overwrite
}

TEST(ScopedTimerTest, CallbackForm) {
  double seen = -1.0;
  {
    ScopedTimer t([&seen](double s) { seen = s; });
  }
  EXPECT_GE(seen, 0.0);
}

TEST(StageSecondsTest, BreakdownCoversCondenseSeconds) {
  const HeteroGraph g = datasets::MakeAcm(1, /*scale=*/0.3);
  exec::ExecContext ex(2);
  core::FreeHgcOptions opts;
  opts.ratio = 0.05;
  auto res = core::Condense(g, opts, &ex);
  ASSERT_TRUE(res.ok());
  const core::StageSeconds& s = res->stage_seconds;
  for (double v : {s.metapath, s.target, s.father, s.leaf, s.assemble}) {
    EXPECT_GE(v, 0.0);
  }
  const double total = s.Total();
  EXPECT_GT(total, 0.0);
  // The five stages account for the condensation wall-clock: within 10%
  // (plus a millisecond floor so microsecond-scale noise cannot flake).
  EXPECT_LE(total, res->seconds * 1.10 + 1e-3);
  EXPECT_GE(total, res->seconds * 0.90 - 1e-3);
}

}  // namespace
}  // namespace freehgc
