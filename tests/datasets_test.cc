#include <gtest/gtest.h>

#include <algorithm>

#include "datasets/generator.h"

namespace freehgc {
namespace {

using datasets::Generate;
using datasets::MakeByName;
using datasets::SchemaConfig;

TEST(GeneratorTest, RespectsSchemaCounts) {
  SchemaConfig c;
  c.name = "test";
  c.types = {{"x", 100, 8}, {"y", 50, 4}};
  c.relations = {{"xy", "x", "y", 2.0, 0.8}};
  c.target = "x";
  c.num_classes = 3;
  auto g = Generate(c, 1);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NodeCount(g->TypeByName("x").value()), 100);
  EXPECT_EQ(g->NodeCount(g->TypeByName("y").value()), 50);
  EXPECT_EQ(g->Features(0).cols(), 8);
  EXPECT_EQ(g->Features(1).cols(), 4);
  EXPECT_EQ(g->num_classes(), 3);
  EXPECT_TRUE(g->Validate().ok());
  // Reverse relation added automatically.
  EXPECT_EQ(g->NumRelations(), 2);
}

TEST(GeneratorTest, DeterministicUnderSeed) {
  const HeteroGraph a = datasets::MakeToy(7);
  const HeteroGraph b = datasets::MakeToy(7);
  const HeteroGraph c = datasets::MakeToy(8);
  EXPECT_EQ(a.TotalEdges(), b.TotalEdges());
  EXPECT_EQ(a.labels(), b.labels());
  EXPECT_EQ(a.Features(0), b.Features(0));
  EXPECT_EQ(a.relation(0).adj, b.relation(0).adj);
  // Different seed changes at least something.
  EXPECT_TRUE(a.labels() != c.labels() || a.TotalEdges() != c.TotalEdges());
}

TEST(GeneratorTest, SplitFractions) {
  SchemaConfig c;
  c.name = "test";
  c.types = {{"x", 1000, 4}};
  c.relations = {{"xx", "x", "x", 2.0, 0.8}};
  c.target = "x";
  c.num_classes = 2;
  c.train_fraction = 0.24;
  c.val_fraction = 0.06;
  auto g = Generate(c, 3);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->train_index().size(), 240u);
  EXPECT_EQ(g->val_index().size(), 60u);
  EXPECT_EQ(g->test_index().size(), 700u);
}

TEST(GeneratorTest, RejectsBadConfigs) {
  SchemaConfig c;
  c.name = "bad";
  c.target = "x";
  c.num_classes = 2;
  EXPECT_FALSE(Generate(c, 1).ok());  // no types
  c.types = {{"x", 10, 4}};
  c.num_classes = 1;
  EXPECT_FALSE(Generate(c, 1).ok());  // too few classes
  c.num_classes = 2;
  c.target = "zzz";
  EXPECT_FALSE(Generate(c, 1).ok());  // missing target
  c.target = "x";
  c.relations = {{"xy", "x", "nope", 1.0, 0.5}};
  EXPECT_FALSE(Generate(c, 1).ok());  // relation endpoint missing
}

TEST(GeneratorTest, PowerLawDegreesAreSkewed) {
  SchemaConfig c;
  c.name = "pl";
  c.types = {{"x", 2000, 4}, {"y", 2000, 4}};
  c.relations = {{"xy", "x", "y", 3.0, 0.0}};
  c.target = "x";
  c.num_classes = 2;
  auto g = Generate(c, 11);
  ASSERT_TRUE(g.ok());
  auto deg = g->relation(0).adj.RowDegrees();
  std::sort(deg.begin(), deg.end());
  const int64_t median = deg[deg.size() / 2];
  const int64_t p99 = deg[deg.size() * 99 / 100];
  // Heavy tail: the 99th percentile is much larger than the median.
  EXPECT_GE(p99, 3 * median);
}

TEST(GeneratorTest, AffinityPlantsClassSignal) {
  // With high affinity, edges connect same-community nodes far more often
  // than chance.
  SchemaConfig c;
  c.name = "aff";
  c.types = {{"x", 500, 4}, {"y", 500, 4}};
  c.relations = {{"xy", "x", "y", 4.0, 0.9}};
  c.target = "x";
  c.num_classes = 2;
  auto g = Generate(c, 13);
  ASSERT_TRUE(g.ok());
  // Features of same-class target nodes are closer than cross-class.
  const auto& labels = g->labels();
  const Matrix& f = g->Features(0);
  const auto m0 = dense::ColumnMean(
      f, [&] {
        std::vector<int32_t> v;
        for (int32_t i = 0; i < 500; ++i) {
          if (labels[static_cast<size_t>(i)] == 0) v.push_back(i);
        }
        return v;
      }());
  const auto m1 = dense::ColumnMean(
      f, [&] {
        std::vector<int32_t> v;
        for (int32_t i = 0; i < 500; ++i) {
          if (labels[static_cast<size_t>(i)] == 1) v.push_back(i);
        }
        return v;
      }());
  float centroid_dist = 0.0f;
  for (size_t i = 0; i < m0.size(); ++i) {
    centroid_dist += (m0[i] - m1[i]) * (m0[i] - m1[i]);
  }
  EXPECT_GT(centroid_dist, 0.1f);
}

TEST(PresetTest, AllPresetsValidateAtSmallScale) {
  for (const char* name :
       {"acm", "dblp", "imdb", "freebase", "mutag", "am"}) {
    auto g = MakeByName(name, 1, /*scale=*/0.05);
    ASSERT_TRUE(g.ok()) << name;
    EXPECT_TRUE(g->Validate().ok()) << name;
    EXPECT_GE(g->num_classes(), 2) << name;
    EXPECT_GT(g->TotalEdges(), 0) << name;
    EXPECT_GE(g->target_type(), 0) << name;
  }
}

TEST(PresetTest, AminerSchemaMatchesPaper) {
  const HeteroGraph g = datasets::MakeAminer(1, /*scale=*/0.01);
  EXPECT_EQ(g.NumNodeTypes(), 3);  // author, paper, venue
  EXPECT_EQ(g.TypeName(g.target_type()), "author");
  EXPECT_EQ(g.num_classes(), 8);
}

TEST(PresetTest, FreebaseHasManyRelations) {
  const HeteroGraph g = datasets::MakeFreebase(1, /*scale=*/0.02);
  EXPECT_EQ(g.NumNodeTypes(), 8);
  EXPECT_GE(g.NumRelations(), 30);  // paper: 36 edge types
  EXPECT_EQ(g.num_classes(), 7);
}

TEST(PresetTest, MutagRelationCountMatchesPaper) {
  const HeteroGraph g = datasets::MakeMutag(1, /*scale=*/0.05);
  EXPECT_EQ(g.NumNodeTypes(), 7);
  EXPECT_GE(g.NumRelations(), 40);  // paper: 46 edge types
  EXPECT_EQ(g.num_classes(), 2);
}

TEST(PresetTest, MakeByNameRejectsUnknown) {
  EXPECT_FALSE(MakeByName("no_such_dataset", 1).ok());
}

TEST(PresetTest, RecommendedHopsMatchPaperTable) {
  EXPECT_EQ(datasets::RecommendedHops("acm"), 3);
  EXPECT_EQ(datasets::RecommendedHops("dblp"), 4);
  EXPECT_EQ(datasets::RecommendedHops("freebase"), 2);
  EXPECT_EQ(datasets::RecommendedHops("mutag"), 1);
  EXPECT_EQ(datasets::RecommendedHops("am"), 1);
  EXPECT_EQ(datasets::RecommendedHops("aminer"), 2);
}

TEST(PresetTest, ClassDistributionCoversAllClasses) {
  const HeteroGraph g = datasets::MakeImdb(5, /*scale=*/0.2);
  std::vector<int32_t> counts(static_cast<size_t>(g.num_classes()), 0);
  for (int32_t y : g.labels()) ++counts[static_cast<size_t>(y)];
  for (int32_t c : counts) EXPECT_GT(c, 0);
}

TEST(PresetTest, PresetConfigMatchesMakeByName) {
  for (const char* name : {"acm", "dblp", "toy"}) {
    auto c = datasets::PresetConfig(name, 0.05);
    ASSERT_TRUE(c.ok()) << name;
    auto direct = MakeByName(name, 3, 0.05);
    ASSERT_TRUE(direct.ok());
    auto via_config = Generate(*c, 3);
    ASSERT_TRUE(via_config.ok());
    EXPECT_EQ(direct->ContentFingerprint(), via_config->ContentFingerprint())
        << name;
  }
  EXPECT_FALSE(datasets::PresetConfig("nope").ok());
}

TEST(GeneratorV3Test, StreamedContainerIsBitIdenticalToHeapGraph) {
  // The tentpole equivalence: GenerateToV3 shares Generate's draw
  // sequence and its incremental fingerprint must equal the heap graph's
  // ContentFingerprint — proving the streamed container holds the exact
  // same bytes (types, CSR arrays, features, labels, splits).
  auto config = datasets::PresetConfig("dblp", 0.05);
  ASSERT_TRUE(config.ok());
  const std::string path = "/tmp/freehgc_test_gen_v3.fhgc";
  auto summary = datasets::GenerateToV3(*config, 11, path);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();

  auto heap = Generate(*config, 11);
  ASSERT_TRUE(heap.ok());
  EXPECT_EQ(summary->fingerprint, heap->ContentFingerprint());
  EXPECT_EQ(summary->nodes, heap->TotalNodes());
  EXPECT_EQ(summary->edges, heap->TotalEdges());

  auto mapped = MapHeteroGraphDetailed(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->fingerprint, heap->ContentFingerprint());
  EXPECT_EQ(mapped->graph.ContentFingerprint(), heap->ContentFingerprint());
  std::remove(path.c_str());
}

TEST(GeneratorV3Test, StreamedAminerPresetRoundTrips) {
  auto config = datasets::PresetConfig("aminer", 0.01);
  ASSERT_TRUE(config.ok());
  const std::string path = "/tmp/freehgc_test_gen_v3_aminer.fhgc";
  auto summary = datasets::GenerateToV3(*config, 7, path);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  auto heap = datasets::MakeAminer(7, 0.01);
  EXPECT_EQ(summary->fingerprint, heap.ContentFingerprint());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace freehgc
